/**
 * @file
 * Observability-layer suite: metric primitives are exact under
 * concurrency, snapshots taken mid-increment are sane, the JSONL
 * event log and Chrome trace emit well-formed JSON, and — the layer's
 * hard invariant — enabling logging and tracing perturbs no pipeline
 * result bit.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/adaptive.hh"
#include "dspace/paper_space.hh"
#include "math/rng.hh"
#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"

namespace {

using namespace ppm;
using namespace ppm::obs;

// --- a minimal JSON validator ----------------------------------------
// Accepts exactly the JSON grammar; no extensions. Used to prove every
// emitted log line / trace file / stats rendering is machine-parsable.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control character
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i)
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return false;
                    pos_ += 4;
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string &s_;
    std::size_t pos_ = 0;
};

std::string
tempPath(const std::string &tag)
{
    return testing::TempDir() + "ppm_obs_" + tag + "_" +
           std::to_string(::getpid()) + ".json";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// --- metric primitives ------------------------------------------------

TEST(ObsMetrics, CounterCountsExactly)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeTracksLevel)
{
    Gauge g;
    g.add(5);
    g.sub(7);
    EXPECT_EQ(g.value(), -2);
    g.set(100);
    EXPECT_EQ(g.value(), 100);
}

TEST(ObsMetrics, HistogramBucketBoundaries)
{
    // Bucket b spans (1us << (b-1), 1us << b]; bucket 0 starts at 0.
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(1000), 0);
    EXPECT_EQ(Histogram::bucketIndex(1001), 1);
    EXPECT_EQ(Histogram::bucketIndex(2000), 1);
    EXPECT_EQ(Histogram::bucketIndex(2001), 2);
    for (int b = 0; b + 1 < Histogram::kBuckets; ++b) {
        const std::uint64_t upper = Histogram::bucketUpperNs(b);
        EXPECT_EQ(Histogram::bucketIndex(upper), b) << "bucket " << b;
        EXPECT_EQ(Histogram::bucketIndex(upper + 1), b + 1)
            << "bucket " << b;
    }
    // Far beyond the last bound lands in the unbounded tail bucket.
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}),
              Histogram::kBuckets - 1);
}

TEST(ObsMetrics, HistogramAggregatesExactly)
{
    Histogram h;
    h.observe(500);     // bucket 0
    h.observe(1500);    // bucket 1
    h.observe(1500);    // bucket 1
    h.observe(3000000); // ~3ms
    const Histogram::Data d = h.data();
    EXPECT_EQ(d.count, 4u);
    EXPECT_EQ(d.total_ns, 500u + 1500 + 1500 + 3000000);
    EXPECT_EQ(d.buckets[0], 1u);
    EXPECT_EQ(d.buckets[1], 2u);
    std::uint64_t spread = 0;
    for (std::uint64_t b : d.buckets)
        spread += b;
    EXPECT_EQ(spread, 4u);
}

TEST(ObsMetrics, CounterExactUnderConcurrency)
{
    Counter c;
    constexpr int kThreads = 8;
    constexpr int kAdds = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kAdds);
}

TEST(ObsMetrics, SnapshotUnderConcurrentIncrement)
{
    // Writers hammer a counter and a histogram while the main thread
    // snapshots the registry. Every snapshot must be internally sane
    // (monotone counter, histogram count == bucket sum) even though
    // it races the writers.
    Registry &reg = Registry::instance();
    Counter &c = reg.counter("test.obs.race_counter");
    Histogram &h = reg.histogram("test.obs.race_hist");
    c.reset();
    h.reset();

    std::atomic<bool> stop{false};
    constexpr int kThreads = 4;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&] {
            std::uint64_t ns = 1;
            while (!stop.load(std::memory_order_relaxed)) {
                c.add();
                h.observe(ns);
                ns = ns * 2 + 1;
                if (ns > (std::uint64_t{1} << 40))
                    ns = 1;
            }
        });

    std::uint64_t prev_count = 0;
    for (int round = 0; round < 200; ++round) {
        const Snapshot snap = reg.snapshot();
        std::uint64_t count = 0;
        for (const auto &cv : snap.counters)
            if (cv.name == "test.obs.race_counter")
                count = cv.value;
        EXPECT_GE(count, prev_count);
        prev_count = count;
        for (const auto &hv : snap.histograms) {
            if (hv.name != "test.obs.race_hist")
                continue;
            std::uint64_t bucket_sum = 0;
            for (std::uint64_t b : hv.buckets)
                bucket_sum += b;
            // Shards are read in order, so the bucket sum can trail
            // or lead the count slightly but never wildly.
            EXPECT_LE(bucket_sum > hv.count ? bucket_sum - hv.count
                                            : hv.count - bucket_sum,
                      std::uint64_t{kThreads} * Histogram::kBuckets);
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &writer : writers)
        writer.join();

    const std::uint64_t final_count = c.value();
    const Histogram::Data d = h.data();
    EXPECT_EQ(d.count, final_count);
    std::uint64_t bucket_sum = 0;
    for (std::uint64_t b : d.buckets)
        bucket_sum += b;
    EXPECT_EQ(bucket_sum, final_count);
}

TEST(ObsMetrics, RegistryHandlesAreStable)
{
    Registry &reg = Registry::instance();
    Counter &a = reg.counter("test.obs.stable");
    Counter &b = reg.counter("test.obs.stable");
    EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, MergeSumsByName)
{
    Snapshot a;
    a.counters = {{"x", 1}, {"y", 2}};
    a.gauges = {{"g", 5}};
    Snapshot b;
    b.counters = {{"y", 10}, {"z", 100}};
    b.gauges = {{"g", -2}};
    merge(a, b);
    ASSERT_EQ(a.counters.size(), 3u);
    EXPECT_EQ(a.counters[0].name, "x");
    EXPECT_EQ(a.counters[0].value, 1u);
    EXPECT_EQ(a.counters[1].name, "y");
    EXPECT_EQ(a.counters[1].value, 12u);
    EXPECT_EQ(a.counters[2].name, "z");
    EXPECT_EQ(a.counters[2].value, 100u);
    ASSERT_EQ(a.gauges.size(), 1u);
    EXPECT_EQ(a.gauges[0].value, 3);
}

TEST(ObsMetrics, DeltaSubtractsCountersClampedAtZero)
{
    Snapshot older;
    older.counters = {{"gone", 9}, {"grew", 10}, {"reset", 500}};
    Snapshot newer;
    newer.counters = {{"fresh", 7}, {"grew", 25}, {"reset", 40}};
    const Snapshot d = delta(newer, older);
    ASSERT_EQ(d.counters.size(), 3u);
    // Order follows `newer`; "gone" (only in older) is dropped.
    EXPECT_EQ(d.counters[0].name, "fresh");
    EXPECT_EQ(d.counters[0].value, 7u); // no baseline = started at 0
    EXPECT_EQ(d.counters[1].name, "grew");
    EXPECT_EQ(d.counters[1].value, 15u);
    // A server restart reset the counter below its old value: the
    // delta clamps to zero instead of wrapping to ~2^64.
    EXPECT_EQ(d.counters[2].name, "reset");
    EXPECT_EQ(d.counters[2].value, 0u);
}

TEST(ObsMetrics, DeltaKeepsGaugeLevels)
{
    Snapshot older;
    older.gauges = {{"depth", 12}};
    Snapshot newer;
    newer.gauges = {{"depth", 3}, {"new_level", -4}};
    const Snapshot d = delta(newer, older);
    // Gauges are levels, not accumulating totals: report the current
    // reading, never a difference.
    ASSERT_EQ(d.gauges.size(), 2u);
    EXPECT_EQ(d.gauges[0].value, 3);
    EXPECT_EQ(d.gauges[1].value, -4);
}

TEST(ObsMetrics, DeltaSubtractsHistogramsBucketwise)
{
    HistogramValue before;
    before.name = "lat";
    before.count = 10;
    before.total_ns = 1000;
    before.buckets = {4, 6, 0};
    HistogramValue after = before;
    after.count = 17;
    after.total_ns = 1800;
    after.buckets = {6, 10, 1};
    Snapshot older, newer;
    older.histograms = {before};
    newer.histograms = {after};
    const Snapshot d = delta(newer, older);
    ASSERT_EQ(d.histograms.size(), 1u);
    EXPECT_EQ(d.histograms[0].count, 7u);
    EXPECT_EQ(d.histograms[0].total_ns, 800u);
    const std::vector<std::uint64_t> want = {2, 4, 1};
    EXPECT_EQ(d.histograms[0].buckets, want);

    // Restarted source: every histogram field clamps independently.
    const Snapshot wrapped = delta(older, newer);
    EXPECT_EQ(wrapped.histograms[0].count, 0u);
    EXPECT_EQ(wrapped.histograms[0].total_ns, 0u);
    const std::vector<std::uint64_t> zeros = {0, 0, 0};
    EXPECT_EQ(wrapped.histograms[0].buckets, zeros);
}

TEST(ObsMetrics, DeltaOfLivePollsMatchesHandIncrements)
{
    // The exact scenario ppm_stats --watch runs: two snapshots of a
    // live registry with known traffic in between.
    Registry &reg = Registry::instance();
    Counter &c = reg.counter("test.obs.delta_live");
    Histogram &h = reg.histogram("test.obs.delta_live_hist");
    c.add(5);
    h.observe(1500);
    const Snapshot first = reg.snapshot();
    c.add(37);
    h.observe(1500);
    h.observe(900);
    const Snapshot d = delta(reg.snapshot(), first);
    std::uint64_t counter_delta = 0;
    for (const auto &cv : d.counters)
        if (cv.name == "test.obs.delta_live")
            counter_delta = cv.value;
    EXPECT_EQ(counter_delta, 37u);
    for (const auto &hv : d.histograms)
        if (hv.name == "test.obs.delta_live_hist") {
            EXPECT_EQ(hv.count, 2u);
            EXPECT_EQ(hv.total_ns, 2400u);
        }
}

TEST(ObsMetrics, QuantileFindsBucketUpperBound)
{
    HistogramValue hv;
    hv.buckets.assign(Histogram::kBuckets, 0);
    hv.buckets[2] = 50; // <= 4us
    hv.buckets[5] = 50; // <= 32us
    hv.count = 100;
    EXPECT_EQ(quantileNs(hv, 0.25), Histogram::bucketUpperNs(2));
    EXPECT_EQ(quantileNs(hv, 0.99), Histogram::bucketUpperNs(5));
    HistogramValue empty;
    EXPECT_EQ(quantileNs(empty, 0.5), 0u);
}

TEST(ObsMetrics, SnapshotJsonIsWellFormed)
{
    Registry &reg = Registry::instance();
    reg.counter("test.obs.json \"quoted\"\n").add(3);
    reg.gauge("test.obs.json_gauge").set(-7);
    reg.histogram("test.obs.json_hist").observe(12345);
    const std::string json = toJson(reg.snapshot());
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    const std::string table = toTable(reg.snapshot());
    EXPECT_NE(table.find("test.obs.json_gauge"), std::string::npos);
}

// --- span macros ------------------------------------------------------

TEST(ObsSpan, SpanFeedsRegistryHistogram)
{
    Registry &reg = Registry::instance();
    reg.histogram("span.test.scope").reset();
    for (int i = 0; i < 3; ++i) {
        OBS_SPAN("test.scope");
    }
#ifndef PPM_OBS_DISABLED
    EXPECT_EQ(reg.histogram("span.test.scope").data().count, 3u);
#else
    EXPECT_EQ(reg.histogram("span.test.scope").data().count, 0u);
#endif
}

TEST(ObsSpan, CounterMacroFeedsRegistry)
{
    Registry::instance().counter("test.macro.count").reset();
    for (int i = 0; i < 5; ++i) {
        OBS_STATIC_COUNTER(hits, "test.macro.count");
        OBS_ADD(hits, 2);
    }
#ifndef PPM_OBS_DISABLED
    EXPECT_EQ(Registry::instance().counter("test.macro.count").value(),
              10u);
#endif
}

// --- event log --------------------------------------------------------

TEST(ObsEventLog, EmitsWellFormedJsonl)
{
    const std::string path = tempPath("log");
    EventLog log;
    log.configure(path, LogLevel::Debug);
    log.write(LogLevel::Info, "test", "kinds",
              {{"str", std::string("a \"b\"\n\x01")},
               {"int", -42},
               {"uint", std::uint64_t{1} << 63},
               {"float", 2.5},
               {"inf", std::numeric_limits<double>::infinity()},
               {"nan", std::nan("")},
               {"flag", true}});
    log.write(LogLevel::Error, "test", "plain", {});
    log.configure("", LogLevel::Info); // close

    std::ifstream in(path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_TRUE(JsonChecker(line).valid()) << line;
    }
    EXPECT_EQ(lines, 2);
    const std::string all = slurp(path);
    EXPECT_NE(all.find("\"comp\":\"test\""), std::string::npos);
    // Non-finite doubles must degrade to null, not break the JSON.
    EXPECT_NE(all.find("\"inf\":null"), std::string::npos);
    EXPECT_NE(all.find("\"nan\":null"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ObsEventLog, LevelFilterDropsBelowMinimum)
{
    const std::string path = tempPath("level");
    EventLog log;
    log.configure(path, LogLevel::Warn);
    EXPECT_FALSE(log.enabled(LogLevel::Info));
    EXPECT_TRUE(log.enabled(LogLevel::Error));
    if (log.enabled(LogLevel::Debug))
        log.write(LogLevel::Debug, "test", "dropped", {});
    log.write(LogLevel::Warn, "test", "kept", {});
    log.configure("", LogLevel::Info);
    const std::string all = slurp(path);
    EXPECT_EQ(all.find("dropped"), std::string::npos);
    EXPECT_NE(all.find("kept"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ObsEventLog, DisabledLogIsSilent)
{
    EventLog log;
    EXPECT_FALSE(log.enabled(LogLevel::Error));
    // Writing to an unconfigured log must be a harmless no-op.
    log.write(LogLevel::Error, "test", "nowhere", {});
}

// --- Chrome trace -----------------------------------------------------

TEST(ObsChromeTrace, EmitsValidTraceDocument)
{
    const std::string path = tempPath("trace");
    ChromeTrace trace;
    trace.configure(path);
    ASSERT_TRUE(trace.enabled());
    trace.record("alpha", 1000, 500);
    trace.record("beta", 2000, 250);
    trace.flush();
    const std::string doc = slurp(path);
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"alpha\""), std::string::npos);
    EXPECT_NE(doc.find("\"beta\""), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(trace.dropped(), 0u);
    trace.configure("");
    std::remove(path.c_str());
}

TEST(ObsChromeTrace, FileIsCompleteAfterEveryFlush)
{
    const std::string path = tempPath("reflush");
    ChromeTrace trace;
    trace.configure(path);
    trace.record("first", 0, 10);
    trace.flush();
    EXPECT_TRUE(JsonChecker(slurp(path)).valid());
    trace.record("second", 20, 10);
    trace.flush();
    const std::string doc = slurp(path);
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"first\""), std::string::npos);
    EXPECT_NE(doc.find("\"second\""), std::string::npos);
    trace.configure("");
    std::remove(path.c_str());
}

// --- the zero-perturbation invariant ----------------------------------

double
response(const dspace::DesignPoint &p)
{
    using namespace ppm::dspace;
    return 0.5 + 25.0 / p[kRobSize] + 0.25 * p[kDl1Lat] +
        300.0 / (p[kL2SizeKB] + 400.0);
}

core::AdaptiveResult
runPipeline()
{
    core::FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    core::AdaptiveSampler sampler(train, test, oracle);
    core::AdaptiveOptions opts;
    opts.initial_size = 20;
    opts.batch_size = 8;
    opts.max_samples = 36;
    opts.candidate_pool = 150;
    opts.num_test_points = 25;
    opts.lhs_candidates = 5;
    opts.trainer.p_min_grid = {1};
    opts.trainer.alpha_grid = {4};
    opts.target_mean_error = 0.0; // run every round
    opts.seed = 20240806;
    return sampler.build(opts);
}

void
expectBitIdentical(const core::AdaptiveResult &a,
                   const core::AdaptiveResult &b)
{
    ASSERT_EQ(a.sample.size(), b.sample.size());
    for (std::size_t i = 0; i < a.sample.size(); ++i)
        EXPECT_EQ(a.sample[i], b.sample[i]) << "sample " << i;
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].error.mean_error,
                  b.history[i].error.mean_error)
            << "round " << i;
        EXPECT_EQ(a.history[i].error.max_error,
                  b.history[i].error.max_error)
            << "round " << i;
    }
    // Trained networks must agree prediction-for-prediction.
    auto train = dspace::paperTrainSpace();
    math::Rng rng(7);
    for (int i = 0; i < 10; ++i) {
        const auto p = train.randomPoint(rng);
        EXPECT_EQ(a.model->predict(p), b.model->predict(p))
            << "probe " << i;
    }
}

TEST(ObsZeroPerturbation, LoggingAndTracingChangeNoResultBit)
{
    // Baseline: observability sinks disabled.
    unsetenv("PPM_LOG");
    unsetenv("PPM_TRACE_OUT");
    reconfigureFromEnv();
    const core::AdaptiveResult off = runPipeline();

    // Hot run: JSONL log at debug level plus Chrome tracing.
    const std::string log_path = tempPath("zp_log");
    const std::string trace_path = tempPath("zp_trace");
    setenv("PPM_LOG", log_path.c_str(), 1);
    setenv("PPM_LOG_LEVEL", "debug", 1);
    setenv("PPM_TRACE_OUT", trace_path.c_str(), 1);
    reconfigureFromEnv();
    const core::AdaptiveResult on = runPipeline();

    // Sinks off again (also flushes the trace buffer to disk).
    unsetenv("PPM_LOG");
    unsetenv("PPM_LOG_LEVEL");
    unsetenv("PPM_TRACE_OUT");
    reconfigureFromEnv();

    expectBitIdentical(off, on);

#ifndef PPM_OBS_DISABLED
    // The instrumented run must actually have produced output — a
    // silent no-op would make this test vacuous.
    const std::string log = slurp(log_path);
    EXPECT_FALSE(log.empty());
    std::istringstream lines(log);
    std::string line;
    while (std::getline(lines, line))
        EXPECT_TRUE(JsonChecker(line).valid()) << line;
    const std::string trace = slurp(trace_path);
    EXPECT_FALSE(trace.empty());
    EXPECT_TRUE(JsonChecker(trace).valid());
    EXPECT_NE(trace.find("adaptive.refit"), std::string::npos);
#endif
    std::remove(log_path.c_str());
    std::remove(trace_path.c_str());
}

TEST(ObsZeroPerturbation, RepeatedRunsAreBitIdentical)
{
    const core::AdaptiveResult a = runPipeline();
    const core::AdaptiveResult b = runPipeline();
    expectBitIdentical(a, b);
}

} // namespace
