/**
 * @file
 * Tests for the batched SoA RBF evaluation plan (rbf_batch.hh): the
 * PPM_SIMD dispatch decision, bit-compatibility of the scalar
 * reference path with the legacy AoS loop, batch-position
 * independence, and the scalar-vs-SIMD ULP contract over randomized
 * networks and batches (including padded-lane tails and degenerate
 * 1-center / 1-dimension shapes).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "math/rng.hh"
#include "rbf/network.hh"
#include "rbf/rbf_batch.hh"

namespace {

using namespace ppm;
using namespace ppm::rbf;

// --- dispatch decision ------------------------------------------------

TEST(SimdDispatch, UnsetOrAutoPicksDetected)
{
    for (SimdKind d :
         {SimdKind::Scalar, SimdKind::Avx2, SimdKind::Neon,
          SimdKind::Avx512}) {
        EXPECT_EQ(resolveSimd(nullptr, d), d);
        EXPECT_EQ(resolveSimd("", d), d);
        EXPECT_EQ(resolveSimd("auto", d), d);
        EXPECT_EQ(resolveSimd("on", d), d);
        EXPECT_EQ(resolveSimd("1", d), d);
    }
}

TEST(SimdDispatch, OffForcesScalar)
{
    for (SimdKind d :
         {SimdKind::Scalar, SimdKind::Avx2, SimdKind::Neon,
          SimdKind::Avx512}) {
        EXPECT_EQ(resolveSimd("off", d), SimdKind::Scalar);
        EXPECT_EQ(resolveSimd("scalar", d), SimdKind::Scalar);
        EXPECT_EQ(resolveSimd("0", d), SimdKind::Scalar);
    }
}

TEST(SimdDispatch, ExplicitKernelRequiresAvailability)
{
    EXPECT_EQ(resolveSimd("avx2", SimdKind::Avx2), SimdKind::Avx2);
    EXPECT_EQ(resolveSimd("avx2", SimdKind::Scalar), SimdKind::Scalar);
    EXPECT_EQ(resolveSimd("avx2", SimdKind::Neon), SimdKind::Scalar);
    // An AVX-512 machine also runs AVX2: "avx2" requests the narrower
    // kernel explicitly.
    EXPECT_EQ(resolveSimd("avx2", SimdKind::Avx512), SimdKind::Avx2);
    EXPECT_EQ(resolveSimd("avx512", SimdKind::Avx512),
              SimdKind::Avx512);
    EXPECT_EQ(resolveSimd("avx512", SimdKind::Avx2), SimdKind::Scalar);
    EXPECT_EQ(resolveSimd("avx512", SimdKind::Scalar),
              SimdKind::Scalar);
    EXPECT_EQ(resolveSimd("neon", SimdKind::Neon), SimdKind::Neon);
    EXPECT_EQ(resolveSimd("neon", SimdKind::Avx2), SimdKind::Scalar);
}

TEST(SimdDispatch, UnknownValueFailsSafeToScalar)
{
    EXPECT_EQ(resolveSimd("sse9", SimdKind::Avx2), SimdKind::Scalar);
    EXPECT_EQ(resolveSimd("AVX2", SimdKind::Avx2), SimdKind::Scalar);
}

TEST(SimdDispatch, DetectNeverInventsAnUncompiledKernel)
{
    const SimdKind d = detectSimd();
#if defined(PPM_SIMD_DISABLED)
    EXPECT_EQ(d, SimdKind::Scalar);
#endif
#if defined(__aarch64__)
    EXPECT_NE(d, SimdKind::Avx2);
    EXPECT_NE(d, SimdKind::Avx512);
#else
    EXPECT_NE(d, SimdKind::Neon);
#endif
}

TEST(SimdDispatch, KindNames)
{
    EXPECT_EQ(simdKindName(SimdKind::Scalar), "scalar");
    EXPECT_EQ(simdKindName(SimdKind::Avx2), "avx2");
    EXPECT_EQ(simdKindName(SimdKind::Neon), "neon");
    EXPECT_EQ(simdKindName(SimdKind::Avx512), "avx512");
}

// --- randomized network construction ----------------------------------

struct RandomNet
{
    std::vector<GaussianBasis> bases;
    std::vector<double> weights;
};

RandomNet
randomNet(math::Rng &rng, std::size_t m, std::size_t dims)
{
    RandomNet net;
    for (std::size_t j = 0; j < m; ++j) {
        dspace::UnitPoint c(dims);
        std::vector<double> r(dims);
        for (std::size_t k = 0; k < dims; ++k) {
            c[k] = rng.uniform();
            // Radii spanning tight to broad; tight ones drive the
            // exponent large and exercise the underflow flush.
            r[k] = rng.uniform(0.02, 2.0);
        }
        net.bases.emplace_back(std::move(c), std::move(r));
        net.weights.push_back(rng.gaussian(0.0, 5.0));
    }
    return net;
}

std::vector<dspace::UnitPoint>
randomBatch(math::Rng &rng, std::size_t n, std::size_t dims)
{
    std::vector<dspace::UnitPoint> xs(n, dspace::UnitPoint(dims));
    for (auto &x : xs)
        for (auto &v : x)
            v = rng.uniform();
    return xs;
}

/** Legacy AoS evaluation: the pre-plan RbfNetwork::predict loop. */
double
legacyPredict(const RandomNet &net, const dspace::UnitPoint &x)
{
    double acc = 0.0;
    for (std::size_t j = 0; j < net.bases.size(); ++j)
        acc += net.weights[j] * net.bases[j].evaluate(x);
    return acc;
}

// --- scalar reference path --------------------------------------------

TEST(BatchPlan, ScalarPathBitCompatibleWithLegacyLoop)
{
    math::Rng rng(42);
    for (int it = 0; it < 50; ++it) {
        const std::size_t m = 1 + rng.uniformInt(std::uint64_t{40});
        const std::size_t dims = 1 + rng.uniformInt(std::uint64_t{9});
        const RandomNet net = randomNet(rng, m, dims);
        const BatchPlan plan(net.bases, net.weights,
                             SimdKind::Scalar);
        for (const auto &x : randomBatch(rng, 8, dims))
            EXPECT_DOUBLE_EQ(plan.predictOne(x),
                             legacyPredict(net, x));
    }
}

TEST(BatchPlan, ScalarBasisRowBitCompatibleWithEvaluate)
{
    math::Rng rng(43);
    const RandomNet net = randomNet(rng, 13, 5);
    const BatchPlan plan(net.bases, {}, SimdKind::Scalar);
    EXPECT_FALSE(plan.hasWeights());
    std::vector<double> row(plan.numBases());
    for (const auto &x : randomBatch(rng, 16, 5)) {
        plan.basisRow(x, row.data());
        for (std::size_t j = 0; j < net.bases.size(); ++j)
            EXPECT_DOUBLE_EQ(row[j], net.bases[j].evaluate(x));
    }
}

// --- plan construction and validation ---------------------------------

TEST(BatchPlan, PadsToLaneMultiple)
{
    math::Rng rng(44);
    const RandomNet net = randomNet(rng, 5, 3);
    const BatchPlan plan(net.bases, net.weights);
    EXPECT_EQ(plan.numBases(), 5u);
    EXPECT_EQ(plan.paddedBases() % 8, 0u);
    EXPECT_GE(plan.paddedBases(), plan.numBases());
}

TEST(BatchPlan, RejectsInvalidInput)
{
    math::Rng rng(45);
    const RandomNet net = randomNet(rng, 3, 2);
    EXPECT_THROW(BatchPlan({}, {}), std::invalid_argument);
    EXPECT_THROW(BatchPlan(net.bases, {1.0, 2.0}),
                 std::invalid_argument);
    std::vector<GaussianBasis> mixed = net.bases;
    mixed.emplace_back(dspace::UnitPoint{0.5},
                       std::vector<double>{0.5});
    EXPECT_THROW(BatchPlan(mixed, {}), std::invalid_argument);
}

TEST(BatchPlan, PredictWithoutWeightsThrows)
{
    math::Rng rng(46);
    const RandomNet net = randomNet(rng, 3, 2);
    const BatchPlan plan(net.bases, {});
    EXPECT_THROW(plan.predictOne(dspace::UnitPoint{0.5, 0.5}),
                 std::logic_error);
}

TEST(BatchPlan, DimensionMismatchThrows)
{
    math::Rng rng(47);
    const RandomNet net = randomNet(rng, 3, 2);
    const BatchPlan plan(net.bases, net.weights);
    EXPECT_THROW(plan.predictOne(dspace::UnitPoint{0.5}),
                 std::invalid_argument);
    double row[3];
    EXPECT_THROW(plan.basisRow(dspace::UnitPoint{0.1, 0.2, 0.3}, row),
                 std::invalid_argument);
}

// --- batch-position independence --------------------------------------

TEST(BatchPlan, PredictionIndependentOfBatchSize)
{
    math::Rng rng(48);
    const RandomNet net = randomNet(rng, 17, 6);
    const BatchPlan plan(net.bases, net.weights); // active kernel
    const auto xs = randomBatch(rng, 256, 6);
    const std::vector<double> big = plan.predict(xs);
    ASSERT_EQ(big.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_DOUBLE_EQ(big[i], plan.predictOne(xs[i]));
    // Prefix batches agree element-wise with the full batch. Odd
    // sizes exercise the scalar tail after any query-pairing fast
    // path; 1 and 2 cover the pure-single and pure-pair cases.
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{7}, std::size_t{16},
                                std::size_t{255}}) {
        const std::vector<dspace::UnitPoint> prefix(xs.begin(),
                                                    xs.begin() + n);
        const std::vector<double> small = plan.predict(prefix);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_DOUBLE_EQ(small[i], big[i]);
    }
}

// --- scalar vs SIMD ULP contract --------------------------------------

/** Scalar exponent e_j(x) = sum_k (x_k - c_k)^2 / r_k^2. */
double
exponentOf(const GaussianBasis &b, const dspace::UnitPoint &x)
{
    double e = 0.0;
    for (std::size_t k = 0; k < b.dimensions(); ++k) {
        const double d = x[k] - b.center()[k];
        e += d * d * b.invRadiusSq()[k];
    }
    return e;
}

/**
 * Bound from rbf_batch.hh: |f_simd - f_scalar| <=
 * eps * sum_j |w_j| h_j ((d + 2) e_j + kExpUlpBound + m + 4)
 * + DBL_MIN. The e_j factor is the dominant term: a few-ulp FMA
 * perturbation of the exp argument scales the response relatively by
 * the argument's magnitude.
 */
double
ulpBound(const RandomNet &net, const dspace::UnitPoint &x)
{
    const double m = static_cast<double>(net.bases.size());
    const double d = static_cast<double>(net.bases[0].dimensions());
    const double eps = std::numeric_limits<double>::epsilon();
    double s = 0.0;
    for (std::size_t j = 0; j < net.bases.size(); ++j) {
        const double e = exponentOf(net.bases[j], x);
        const double h = net.bases[j].evaluate(x);
        s += std::fabs(net.weights[j]) * h *
             ((d + 2.0) * e + kExpUlpBound + m + 4.0);
    }
    // The DBL_MIN floor admits the flush-to-zero of denormals.
    return eps * s + std::numeric_limits<double>::min();
}

TEST(BatchPlanProperty, SimdMatchesScalarWithinUlpBound)
{
    const SimdKind active = activeSimd();
    // Shapes chosen to hit padded-lane tails (m % 8 != 0), exact
    // multiples, and the degenerate 1-center and 1-dimension cases.
    const std::size_t shapes[][2] = {
        {1, 1},  {1, 9},  {2, 3},  {7, 4},  {8, 4},
        {9, 4},  {16, 9}, {31, 2}, {33, 6}, {64, 9},
    };
    math::Rng rng(4242);
    std::size_t checked = 0;
    for (const auto &shape : shapes) {
        const std::size_t m = shape[0], dims = shape[1];
        for (int rep = 0; rep < 10; ++rep) {
            const RandomNet net = randomNet(rng, m, dims);
            const BatchPlan simd(net.bases, net.weights, active);
            const BatchPlan scalar(net.bases, net.weights,
                                   SimdKind::Scalar);
            const auto xs = randomBatch(rng, 100, dims);
            const auto got = simd.predict(xs);
            const auto ref = scalar.predict(xs);
            for (std::size_t i = 0; i < xs.size(); ++i) {
                EXPECT_NEAR(got[i], ref[i], ulpBound(net, xs[i]))
                    << "m=" << m << " dims=" << dims << " i=" << i;
                ++checked;
            }
        }
    }
    EXPECT_GE(checked, 10000u); // the 10k-prediction property floor
}

TEST(BatchPlanProperty, BasisRowsMatchWithinUlpBound)
{
    const SimdKind active = activeSimd();
    math::Rng rng(777);
    const double eps = std::numeric_limits<double>::epsilon();
    for (int rep = 0; rep < 20; ++rep) {
        const std::size_t m = 1 + rng.uniformInt(std::uint64_t{40});
        const std::size_t dims = 1 + rng.uniformInt(std::uint64_t{9});
        const RandomNet net = randomNet(rng, m, dims);
        const BatchPlan simd(net.bases, {}, active);
        const BatchPlan scalar(net.bases, {}, SimdKind::Scalar);
        std::vector<double> hs(m), hr(m);
        for (const auto &x : randomBatch(rng, 25, dims)) {
            simd.basisRow(x, hs.data());
            scalar.basisRow(x, hr.data());
            for (std::size_t j = 0; j < m; ++j) {
                // Per-basis bound: FMA exponent perturbation scaled
                // by the exponent magnitude plus the vector exp's
                // own kExpUlpBound (see rbf_batch.hh).
                const double e = exponentOf(net.bases[j], x);
                const double bound =
                    ((static_cast<double>(dims) + 2.0) * e +
                     kExpUlpBound + 2.0) *
                        eps * std::fabs(hr[j]) +
                    std::numeric_limits<double>::min();
                EXPECT_NEAR(hs[j], hr[j], bound)
                    << "m=" << m << " dims=" << dims << " j=" << j;
            }
        }
    }
}

TEST(BatchPlanProperty, BasisRowNeverStoresPastBasisCount)
{
    // Regression test for an out-of-bounds store in the NEON kernel:
    // padding blocks (jb >= m) were stored into the caller's row,
    // which holds exactly m doubles. Rows here carry a sentinel guard
    // region after m covering the full pad width, so a padding-block
    // store is caught on every kernel even without asan. Constructing
    // a plan with an uncompiled kind dispatches to scalar, so the
    // kind loop exercises whichever kernels this build has (NEON on
    // aarch64, AVX2/AVX-512 on x86).
    constexpr double kSentinel = -1234.5;
    constexpr std::size_t kGuard = 16; // >= pad width of every kernel
    math::Rng rng(616);
    for (SimdKind kind :
         {SimdKind::Scalar, SimdKind::Avx2, SimdKind::Neon,
          SimdKind::Avx512}) {
        // Every tail residue against the 2/4/8-lane block widths.
        for (std::size_t m : {std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{5},
                              std::size_t{7}, std::size_t{9},
                              std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{31}}) {
            const std::size_t dims = 1 + rng.uniformInt(std::uint64_t{5});
            const RandomNet net = randomNet(rng, m, dims);
            const BatchPlan plan(net.bases, {}, kind);
            std::vector<double> row(m + kGuard, kSentinel);
            plan.basisRow(randomBatch(rng, 1, dims)[0], row.data());
            for (std::size_t j = 0; j < m; ++j)
                EXPECT_NE(row[j], kSentinel)
                    << simdKindName(kind) << " m=" << m << " j=" << j;
            for (std::size_t j = m; j < row.size(); ++j)
                EXPECT_EQ(row[j], kSentinel)
                    << simdKindName(kind) << " m=" << m << " j=" << j;
        }
    }
}

TEST(BatchPlanProperty, TinyRadiiUnderflowToExactZeroBothPaths)
{
    // A far-away query with a tiny radius drives the exponent past
    // the underflow threshold: both kernels must flush to exactly 0.
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.0},
                       std::vector<double>{1e-3});
    const BatchPlan simd(bases, {1.0}, activeSimd());
    const BatchPlan scalar(bases, {1.0}, SimdKind::Scalar);
    const dspace::UnitPoint far{1.0};
    EXPECT_EQ(simd.predictOne(far), 0.0);
    EXPECT_EQ(scalar.predictOne(far), 0.0);
}

TEST(BatchPlanProperty, ExactlyOneAtCenterBothPaths)
{
    // exp(0) must be exactly 1.0 in the vector kernel too (tests
    // elsewhere rely on EXPECT_DOUBLE_EQ at the center).
    math::Rng rng(31);
    const RandomNet net = randomNet(rng, 9, 4);
    const BatchPlan simd(net.bases, {}, activeSimd());
    std::vector<double> row(9);
    simd.basisRow(net.bases[4].center(), row.data());
    EXPECT_DOUBLE_EQ(row[4], 1.0);
}

// --- network integration ----------------------------------------------

TEST(RbfNetworkPlan, NetworkRoutesThroughCompiledPlan)
{
    math::Rng rng(50);
    const RandomNet rn = randomNet(rng, 12, 3);
    const RbfNetwork net(rn.bases, rn.weights);
    ASSERT_NE(net.plan(), nullptr);
    EXPECT_EQ(net.plan()->kind(), activeSimd());
    for (const auto &x : randomBatch(rng, 10, 3))
        EXPECT_DOUBLE_EQ(net.predict(x), net.plan()->predictOne(x));
}

TEST(RbfNetworkPlan, CopiesShareThePlan)
{
    math::Rng rng(51);
    const RandomNet rn = randomNet(rng, 4, 2);
    const RbfNetwork a(rn.bases, rn.weights);
    const RbfNetwork b = a; // NOLINT: the share is the point
    EXPECT_EQ(a.plan().get(), b.plan().get());
}

TEST(RbfNetworkPlan, DesignMatrixMatchesPlanRows)
{
    math::Rng rng(52);
    const RandomNet rn = randomNet(rng, 7, 4);
    const auto xs = randomBatch(rng, 20, 4);
    const math::Matrix h = designMatrix(rn.bases, xs);
    const BatchPlan plan(rn.bases, {});
    std::vector<double> row(7);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        plan.basisRow(xs[i], row.data());
        for (std::size_t j = 0; j < 7u; ++j)
            EXPECT_DOUBLE_EQ(h(i, j), row[j]);
    }
}

} // namespace
