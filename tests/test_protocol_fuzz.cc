/**
 * @file
 * Structure-aware protocol fuzzing: a corpus of one valid frame per
 * message type is pushed through eight mutators — random bit flips,
 * byte substitutions, truncations, extensions, length-field lies, CRC
 * corruption, version skew, unknown type codes — for >= 10k
 * deterministic mutants (math::Rng::stream, so every run fuzzes the
 * exact same inputs). Every mutant must be rejected with ProtocolError
 * by decodeFrame or the type-dispatched payload parser: no crash, no
 * hang, no other exception type, and never silent acceptance.
 *
 * The bit/byte mutators deliberately skip the type field (offsets
 * 6-7): flipping between valid nonce-frame codes (Ping=4 <-> Pong=5)
 * can produce a genuinely well-formed different frame, which is a
 * routing concern for the request/response layer, not a parsing bug.
 * A dedicated mutator covers the type field with codes outside the
 * known range instead.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dspace/paper_space.hh"
#include "math/rng.hh"
#include "serve/protocol.hh"

namespace {

using namespace ppm;
using Bytes = std::vector<std::uint8_t>;

/** Offsets of the 16-bit type field, excluded from blind mutators. */
constexpr std::size_t kTypeOffset = 6;
constexpr std::size_t kTypeEnd = 8;

/** Offset of the 32-bit payload_len field. */
constexpr std::size_t kLenOffset = 8;

/** Offset of the 16-bit version field. */
constexpr std::size_t kVersionOffset = 4;

void
putU16(Bytes &b, std::size_t off, std::uint16_t v)
{
    b[off] = static_cast<std::uint8_t>(v & 0xFF);
    b[off + 1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU32(Bytes &b, std::size_t off, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
getU16(const Bytes &b, std::size_t off)
{
    return static_cast<std::uint16_t>(b[off] |
                                      (b[off + 1] << 8));
}

/** One valid frame per message type, with realistic payloads. */
std::vector<Bytes>
corpus()
{
    std::vector<Bytes> frames;
    frames.push_back(serve::encodePing(0x1122334455667788ULL));
    frames.push_back(serve::encodePong(0xA5A5A5A5ULL));
    frames.push_back(serve::encodeStatsRequest(7));
    frames.push_back(
        serve::encodeError({"benchmark 'zeus' is unknown"}));

    serve::EvalRequest req;
    req.benchmark = "mcf";
    req.metric = core::Metric::Cpi;
    req.trace_length = 12000;
    req.warmup = 2000;
    req.seed = 42;
    dspace::DesignSpace space = dspace::paperTrainSpace();
    math::Rng rng(9);
    req.points.push_back(space.randomPoint(rng));
    req.points.push_back(space.randomPoint(rng));
    frames.push_back(serve::encodeEvalRequest(req));

    serve::EvalResponse resp;
    resp.values = {1.25, 2.5, 0.875};
    resp.fresh_evaluations = 2;
    resp.total_evaluations = 17;
    frames.push_back(serve::encodeEvalResponse(resp));

    obs::Snapshot snap;
    snap.counters.push_back({"serve.requests", 12});
    snap.gauges.push_back({"serve.active_connections", 3});
    obs::HistogramValue hist;
    hist.name = "span.serve.request";
    hist.count = 4;
    hist.total_ns = 123456;
    hist.buckets.assign(obs::Histogram::kBuckets, 0);
    hist.buckets[5] = 4;
    snap.histograms.push_back(hist);
    frames.push_back(serve::encodeStatsResponse(snap));

    serve::PredictRequest preq;
    preq.model = serve::ModelKind::Rbf;
    preq.points.push_back(space.randomPoint(rng));
    preq.points.push_back(space.randomPoint(rng));
    frames.push_back(serve::encodePredictRequest(preq));

    serve::PredictResponse presp;
    presp.model_version = 3;
    presp.values = {0.75, 1.5};
    frames.push_back(serve::encodePredictResponse(presp));

    frames.push_back(serve::encodeModelInfoRequest(0xC0FFEE));

    serve::ModelInfo info;
    info.loaded = true;
    info.model_version = 3;
    info.benchmark = "mcf";
    info.metric = core::Metric::Cpi;
    info.trace_length = 12000;
    info.warmup = 2000;
    info.num_bases = 7;
    info.num_linear_terms = 5;
    info.param_names = {"depth", "rob"};
    frames.push_back(serve::encodeModelInfoResponse(info));

    // A model push whose blob is opaque bytes at this layer (the
    // snapshot decoder has its own fuzz suite).
    frames.push_back(serve::encodeModelPush({0xDE, 0xAD, 0xBE, 0xEF}));

    serve::ModelPushAck ack;
    ack.accepted = false;
    ack.model_version = 3;
    ack.message = "stale version 2 (active 3)";
    frames.push_back(serve::encodeModelPushAck(ack));

    return frames;
}

/**
 * Parse the payload as the frame's type claims it should parse — the
 * second line of defence behind decodeFrame's framing checks.
 */
void
dispatchParse(const serve::Frame &frame)
{
    switch (frame.type) {
      case serve::MsgType::EvalRequest:
        (void)serve::parseEvalRequest(frame.payload);
        break;
      case serve::MsgType::EvalResponse:
        (void)serve::parseEvalResponse(frame.payload);
        break;
      case serve::MsgType::Error:
        (void)serve::parseError(frame.payload);
        break;
      case serve::MsgType::Ping:
        (void)serve::parsePing(frame.payload);
        break;
      case serve::MsgType::Pong:
        (void)serve::parsePong(frame.payload);
        break;
      case serve::MsgType::StatsRequest:
        (void)serve::parseStatsRequest(frame.payload);
        break;
      case serve::MsgType::StatsResponse:
        (void)serve::parseStatsResponse(frame.payload);
        break;
      case serve::MsgType::PredictRequest:
        (void)serve::parsePredictRequest(frame.payload);
        break;
      case serve::MsgType::PredictResponse:
        (void)serve::parsePredictResponse(frame.payload);
        break;
      case serve::MsgType::ModelInfoRequest:
        (void)serve::parseModelInfoRequest(frame.payload);
        break;
      case serve::MsgType::ModelInfoResponse:
        (void)serve::parseModelInfoResponse(frame.payload);
        break;
      case serve::MsgType::ModelPush:
        (void)serve::parseModelPush(frame.payload);
        break;
      case serve::MsgType::ModelPushAck:
        (void)serve::parseModelPushAck(frame.payload);
        break;
    }
}

/** A named frame mutator; every output must be an invalid frame. */
struct Mutator
{
    const char *name;
    Bytes (*mutate)(const Bytes &frame, math::Rng &rng);
};

/** Random offset into @p frame that avoids the type field. */
std::size_t
offsetSkippingType(const Bytes &frame, math::Rng &rng)
{
    std::size_t off;
    do {
        off = static_cast<std::size_t>(rng.uniformInt(frame.size()));
    } while (off >= kTypeOffset && off < kTypeEnd);
    return off;
}

const Mutator kMutators[] = {
    {"bit-flip",
     [](const Bytes &frame, math::Rng &rng) {
         Bytes m = frame;
         const std::size_t off = offsetSkippingType(m, rng);
         m[off] ^= static_cast<std::uint8_t>(
             1u << rng.uniformInt(8));
         return m;
     }},
    {"byte-substitute",
     [](const Bytes &frame, math::Rng &rng) {
         Bytes m = frame;
         const std::size_t off = offsetSkippingType(m, rng);
         // xor with a nonzero byte: guaranteed to change the value.
         m[off] ^= static_cast<std::uint8_t>(
             1 + rng.uniformInt(255));
         return m;
     }},
    {"truncate",
     [](const Bytes &frame, math::Rng &rng) {
         Bytes m = frame;
         m.resize(static_cast<std::size_t>(
             rng.uniformInt(frame.size())));
         return m;
     }},
    {"extend",
     [](const Bytes &frame, math::Rng &rng) {
         Bytes m = frame;
         const std::size_t extra =
             1 + static_cast<std::size_t>(rng.uniformInt(16));
         for (std::size_t i = 0; i < extra; ++i)
             m.push_back(
                 static_cast<std::uint8_t>(rng.uniformInt(256)));
         return m;
     }},
    {"length-lie",
     [](const Bytes &frame, math::Rng &rng) {
         // A payload_len that disagrees with the actual frame size:
         // sometimes small, sometimes absurd (> kMaxPayload).
         Bytes m = frame;
         std::uint32_t lie =
             rng.bernoulli(0.5)
                 ? static_cast<std::uint32_t>(
                       rng.uniformInt(1u << 20))
                 : serve::kMaxPayload +
                       static_cast<std::uint32_t>(
                           rng.uniformInt(1u << 20));
         std::uint32_t orig = 0;
         for (int i = 0; i < 4; ++i)
             orig |= static_cast<std::uint32_t>(
                         m[kLenOffset + static_cast<std::size_t>(i)])
                     << (8 * i);
         if (lie == orig) // an honest draw is no lie; force a change
             lie ^= 1u;
         putU32(m, kLenOffset, lie);
         return m;
     }},
    {"crc-corrupt",
     [](const Bytes &frame, math::Rng &rng) {
         Bytes m = frame;
         const std::uint32_t x = static_cast<std::uint32_t>(
             1 + rng.uniformInt(0xFFFFFFFFu));
         for (int i = 0; i < 4; ++i)
             m[m.size() - 4 + static_cast<std::size_t>(i)] ^=
                 static_cast<std::uint8_t>(x >> (8 * i));
         return m;
     }},
    {"version-skew",
     [](const Bytes &frame, math::Rng &rng) {
         Bytes m = frame;
         std::uint16_t v;
         do {
             v = static_cast<std::uint16_t>(
                 rng.uniformInt(0x10000));
         } while (v == serve::kVersion);
         putU16(m, kVersionOffset, v);
         return m;
     }},
    {"type-skew",
     [](const Bytes &frame, math::Rng &rng) {
         // Only codes outside the known range: a swap among valid
         // types can be a well-formed different frame.
         Bytes m = frame;
         const std::uint16_t t =
             rng.bernoulli(0.25)
                 ? 0
                 : static_cast<std::uint16_t>(
                       16 + rng.uniformInt(0x10000 - 16));
         putU16(m, kTypeOffset, t);
         return m;
     }},
};

constexpr int kMutantsPerPair = 200;

TEST(ProtocolFuzz, CorpusFramesAreValid)
{
    for (const Bytes &frame : corpus()) {
        serve::Frame decoded;
        ASSERT_NO_THROW(decoded = serve::decodeFrame(frame));
        ASSERT_NO_THROW(dispatchParse(decoded));
    }
}

TEST(ProtocolFuzz, EveryMutantRejectedWithProtocolError)
{
    const std::vector<Bytes> frames = corpus();
    std::uint64_t stream_index = 0;
    std::uint64_t mutants = 0;
    std::uint64_t unchanged = 0;
    for (const Bytes &frame : frames) {
        for (const Mutator &mutator : kMutators) {
            for (int i = 0; i < kMutantsPerPair; ++i) {
                math::Rng rng =
                    math::Rng::stream(0xF022, stream_index++);
                const Bytes mutant = mutator.mutate(frame, rng);
                if (mutant == frame) {
                    // A mutator drew an identity transform (cannot
                    // happen by construction; counted defensively so
                    // a regression is visible, not silently skipped).
                    ++unchanged;
                    continue;
                }
                ++mutants;
                bool rejected = false;
                try {
                    const serve::Frame decoded =
                        serve::decodeFrame(mutant);
                    dispatchParse(decoded);
                } catch (const serve::ProtocolError &) {
                    rejected = true;
                } catch (const std::exception &e) {
                    FAIL() << mutator.name << " mutant "
                           << stream_index - 1
                           << " raised a non-protocol exception: "
                           << e.what();
                }
                EXPECT_TRUE(rejected)
                    << mutator.name << " mutant " << stream_index - 1
                    << " (" << mutant.size()
                    << " bytes) was silently accepted";
            }
        }
    }
    EXPECT_EQ(unchanged, 0u);
    EXPECT_GE(mutants, 10000u) << "fuzz corpus shrank below spec";
}

TEST(ProtocolFuzz, Version1FramesAreRejected)
{
    // A peer speaking protocol v1 (pre-Stats) must get a clean
    // ProtocolError, not a misparse.
    for (const Bytes &frame : corpus()) {
        Bytes v1 = frame;
        putU16(v1, kVersionOffset, 1);
        EXPECT_THROW((void)serve::decodeFrame(v1),
                     serve::ProtocolError);
    }
}

TEST(ProtocolFuzz, HeaderRejectsEveryUnknownTypeCode)
{
    // Exhaustive, not sampled: all 2^16 type codes against a valid
    // frame; exactly the fifteen known codes may pass the header
    // check (Eval/Error/nonce/Stats plus the PREDICT and MODEL
    // families, plus the v4 TRACE pair).
    const Bytes frame = serve::encodePing(1);
    int accepted = 0;
    for (std::uint32_t t = 0; t < 0x10000; ++t) {
        Bytes m = frame;
        putU16(m, kTypeOffset, static_cast<std::uint16_t>(t));
        try {
            (void)serve::decodeHeader(m.data(), m.size());
            ++accepted;
            EXPECT_GE(t, 1u);
            EXPECT_LE(t, 15u);
        } catch (const serve::ProtocolError &) {
        }
    }
    EXPECT_EQ(accepted, 15);
}

TEST(ProtocolFuzz, EveryTruncationLengthIsRejected)
{
    // Exhaustive truncation sweep of the largest corpus frame: every
    // proper prefix must throw, whichever field the cut lands in.
    Bytes largest;
    for (const Bytes &frame : corpus())
        if (frame.size() > largest.size())
            largest = frame;
    for (std::size_t n = 0; n < largest.size(); ++n) {
        const Bytes prefix(largest.begin(),
                           largest.begin() +
                               static_cast<std::ptrdiff_t>(n));
        EXPECT_THROW((void)serve::decodeFrame(prefix),
                     serve::ProtocolError)
            << "prefix length " << n;
    }
}

TEST(ProtocolFuzz, NonceFrameTypeConfusionIsWellFormed)
{
    // The documented reason blind mutators skip the type field:
    // Ping(4) with its type swapped to Pong(5) IS a valid frame —
    // same 8-byte nonce payload, same CRC — so "reject it" would be
    // the wrong spec at this layer. Pin that understanding down.
    Bytes m = serve::encodePing(0xBEEF);
    putU16(m, kTypeOffset, getU16(m, kTypeOffset) ^ 1u); // 4 -> 5
    serve::Frame decoded;
    ASSERT_NO_THROW(decoded = serve::decodeFrame(m));
    EXPECT_EQ(decoded.type, serve::MsgType::Pong);
    EXPECT_EQ(serve::parsePong(decoded.payload), 0xBEEFu);
}

} // namespace
