/**
 * @file
 * Unit tests for the model selection criteria (AIC_c of paper Eq 9,
 * plus BIC and GCV).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rbf/criteria.hh"

namespace {

using namespace ppm::rbf;

TEST(Criteria, AiccMatchesEq9)
{
    // AICc = p log(sse/p) + 2m + 2m(m+1)/(p - m - 1)
    const std::size_t p = 100, m = 10;
    const double sse = 2.5;
    const double expected = 100.0 * std::log(2.5 / 100.0) + 20.0 +
        2.0 * 10.0 * 11.0 / (100.0 - 10.0 - 1.0);
    EXPECT_NEAR(aicc(p, m, sse), expected, 1e-9);
}

TEST(Criteria, AiccPenalizesModelSize)
{
    const double sse = 1.0;
    EXPECT_LT(aicc(100, 5, sse), aicc(100, 20, sse));
}

TEST(Criteria, AiccRewardsFitQuality)
{
    EXPECT_LT(aicc(100, 10, 0.5), aicc(100, 10, 5.0));
}

TEST(Criteria, AiccInfiniteWhenOverparameterized)
{
    // Correction term requires p - m - 1 > 0.
    EXPECT_TRUE(std::isinf(aicc(10, 9, 1.0)));
    EXPECT_TRUE(std::isinf(aicc(10, 10, 1.0)));
    EXPECT_TRUE(std::isfinite(aicc(10, 8, 1.0)));
}

TEST(Criteria, AiccCorrectionGrowsNearSaturation)
{
    // The small-sample correction dominates as m approaches p.
    const double sse = 1.0;
    const double low = aicc(30, 5, sse);
    const double high = aicc(30, 25, sse);
    EXPECT_GT(high - low, 30.0);
}

TEST(Criteria, PerfectFitDoesNotProduceMinusInfinity)
{
    EXPECT_TRUE(std::isfinite(aicc(50, 5, 0.0)));
    EXPECT_TRUE(std::isfinite(bic(50, 5, 0.0)));
    EXPECT_TRUE(std::isfinite(gcv(50, 5, 0.0)));
}

TEST(Criteria, BicFormula)
{
    const double expected =
        50.0 * std::log(2.0 / 50.0) + 4.0 * std::log(50.0);
    EXPECT_NEAR(bic(50, 4, 2.0), expected, 1e-9);
}

TEST(Criteria, BicPenaltyStrongerThanAicForLargeSamples)
{
    // For p with log(p) > 2 the per-parameter BIC penalty exceeds
    // AIC's 2m (ignoring AICc's small-sample correction).
    const double sse = 1.0;
    const double bic_delta = bic(1000, 11, sse) - bic(1000, 10, sse);
    const double aic_delta = aicc(1000, 11, sse) - aicc(1000, 10, sse);
    EXPECT_GT(bic_delta, aic_delta);
}

TEST(Criteria, GcvFormula)
{
    EXPECT_NEAR(gcv(40, 10, 3.0), 40.0 * 3.0 / (30.0 * 30.0), 1e-12);
}

TEST(Criteria, GcvInfiniteAtSaturation)
{
    EXPECT_TRUE(std::isinf(gcv(10, 10, 1.0)));
    EXPECT_TRUE(std::isinf(bic(10, 10, 1.0)));
}

TEST(Criteria, DispatchMatchesDirectCalls)
{
    EXPECT_DOUBLE_EQ(evaluateCriterion(Criterion::AICc, 60, 6, 1.5),
                     aicc(60, 6, 1.5));
    EXPECT_DOUBLE_EQ(evaluateCriterion(Criterion::BIC, 60, 6, 1.5),
                     bic(60, 6, 1.5));
    EXPECT_DOUBLE_EQ(evaluateCriterion(Criterion::GCV, 60, 6, 1.5),
                     gcv(60, 6, 1.5));
}

TEST(Criteria, Names)
{
    EXPECT_EQ(criterionName(Criterion::AICc), "AICc");
    EXPECT_EQ(criterionName(Criterion::BIC), "BIC");
    EXPECT_EQ(criterionName(Criterion::GCV), "GCV");
}

} // namespace
