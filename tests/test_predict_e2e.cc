/**
 * @file
 * End-to-end prediction-plane suite: PREDICT batches are bit-identical
 * whether evaluated in-process from the snapshot, through one PREDICT
 * server, or sharded across four; an unreachable server degrades to
 * the local snapshot with identical bits; the hosted model hot-swaps
 * under concurrent load with zero failed requests and a version echo
 * that always matches the bytes served; a watched model directory
 * picks up atomic publishes; pushes are version-gated; a publisher
 * SIGKILLed mid-save never leaves an unloadable snapshot behind; and
 * the real ppm_serve binary serves predictions via --predict.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dspace/paper_space.hh"
#include "linreg/linear_model.hh"
#include "math/rng.hh"
#include "rbf/network.hh"
#include "serve/model_snapshot.hh"
#include "serve/predict_oracle.hh"
#include "serve/protocol.hh"
#include "serve/sim_server.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"

extern char **environ;

namespace {

namespace fs = std::filesystem;
using namespace ppm;

std::string
uniqueSocket(const std::string &tag)
{
    return "/tmp/ppm_predict_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

fs::path
uniqueDir(const std::string &tag)
{
    return fs::temp_directory_path() /
           ("ppm_predict_" + tag + "_" + std::to_string(::getpid()));
}

/**
 * A deterministic hand-built snapshot over the paper space. Different
 * @p seed values yield genuinely different models, so a version swap
 * changes the served bits — which is what the swap tests verify.
 */
serve::ModelSnapshot
buildSnapshot(std::uint64_t version, std::uint64_t seed)
{
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const std::size_t dims = space.size();
    math::Rng rng(seed);
    std::vector<rbf::GaussianBasis> bases;
    std::vector<double> weights;
    for (int b = 0; b < 8; ++b) {
        dspace::UnitPoint center(dims);
        std::vector<double> radius(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            center[d] = rng.uniform();
            radius[d] = 0.2 + rng.uniform();
        }
        bases.emplace_back(std::move(center), std::move(radius));
        weights.push_back(rng.uniform() * 4 - 2);
    }
    std::vector<linreg::Term> terms =
        linreg::fullTwoFactorTerms(dims);
    std::vector<double> coeffs;
    for (std::size_t t = 0; t < terms.size(); ++t)
        coeffs.push_back(rng.uniform() * 2 - 1);

    serve::ModelSnapshot snap;
    snap.model_version = version;
    snap.benchmark = "twolf";
    snap.metric = core::Metric::Cpi;
    snap.trace_length = 100000;
    snap.warmup = 0;
    snap.train_points = 30;
    snap.p_min = 2;
    snap.alpha = 1.5;
    snap.space = space;
    snap.network =
        rbf::RbfNetwork(std::move(bases), std::move(weights));
    snap.linear =
        linreg::LinearModel(std::move(terms), std::move(coeffs));
    return snap;
}

/** Query batch inside the paper space; odd size exercises chunking. */
std::vector<dspace::DesignPoint>
queryBatch(int n = 33)
{
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    math::Rng rng(77);
    std::vector<dspace::DesignPoint> points;
    for (int i = 0; i < n; ++i)
        points.push_back(space.randomPoint(rng));
    return points;
}

serve::RemoteOptions
fastRemote(std::vector<std::string> sockets)
{
    serve::RemoteOptions opts;
    opts.sockets = std::move(sockets);
    opts.connect_timeout_ms = 1000;
    opts.io_timeout_ms = 30'000;
    opts.max_attempts = 2;
    opts.backoff_initial_ms = 1;
    opts.backoff_max_ms = 10;
    opts.chunk_points = 4;
    opts.max_connections = 2;
    return opts;
}

serve::ServerOptions
predictServer(const std::string &sock, const std::string &snapshot,
              unsigned workers = 2)
{
    serve::ServerOptions opts;
    opts.socket_path = sock;
    opts.num_workers = workers;
    opts.predict_snapshot = snapshot;
    return opts;
}

/** Save a snapshot to a unique temp file; caller unlinks. */
std::string
savedSnapshot(const serve::ModelSnapshot &snap,
              const std::string &tag)
{
    const std::string path =
        (uniqueDir("snap").string() + "_" + tag + ".ppmm");
    serve::saveSnapshot(snap, path);
    return path;
}

void
expectBitIdentical(const std::vector<double> &got,
                   const std::vector<double> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
            << "value " << i << " differs: " << got[i] << " vs "
            << want[i];
}

TEST(PredictE2E, OneShardBitIdenticalToLocalSnapshot)
{
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const auto batch = queryBatch();
    const std::vector<double> want =
        serve::predictWithSnapshot(snap, batch);

    const std::string path = savedSnapshot(snap, "w1");
    const std::string sock = uniqueSocket("w1");
    serve::SimServer server(predictServer(sock, path));
    server.start();
    EXPECT_EQ(server.modelVersion(), 1u);

    serve::PredictOracle oracle(snap, fastRemote({sock}));
    expectBitIdentical(oracle.evaluateAll(batch), want);
    EXPECT_EQ(oracle.remotePoints(), batch.size());
    EXPECT_EQ(oracle.fallbackPoints(), 0u);
    EXPECT_EQ(oracle.serverVersion(), 1u);
    EXPECT_EQ(oracle.evaluations(), batch.size());

    // Single-point path too.
    const double one = oracle.cpi(batch.front());
    EXPECT_EQ(one, want.front());
    server.stop();
    ::unlink(path.c_str());
}

TEST(PredictE2E, FourShardsBitIdenticalToLocalSnapshot)
{
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const auto batch = queryBatch();
    const std::vector<double> want =
        serve::predictWithSnapshot(snap, batch);

    const std::string path = savedSnapshot(snap, "w4");
    std::vector<std::unique_ptr<serve::SimServer>> servers;
    std::vector<std::string> socks;
    for (int i = 0; i < 4; ++i) {
        socks.push_back(uniqueSocket("w4_" + std::to_string(i)));
        servers.push_back(std::make_unique<serve::SimServer>(
            predictServer(socks.back(), path, 1)));
        servers.back()->start();
    }

    serve::PredictOracle oracle(snap, fastRemote(socks));
    expectBitIdentical(oracle.evaluateAll(batch), want);
    EXPECT_EQ(oracle.remotePoints(), batch.size());
    EXPECT_EQ(oracle.fallbackPoints(), 0u);

    for (auto &server : servers)
        server->stop();
    ::unlink(path.c_str());
}

TEST(PredictE2E, LinearBaselineServedRemotely)
{
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const auto batch = queryBatch(9);
    const std::vector<double> want = serve::predictWithSnapshot(
        snap, batch, serve::ModelKind::Linear);

    const std::string path = savedSnapshot(snap, "lin");
    const std::string sock = uniqueSocket("lin");
    serve::SimServer server(predictServer(sock, path));
    server.start();

    serve::PredictOracle oracle(snap, fastRemote({sock}),
                                serve::ModelKind::Linear);
    expectBitIdentical(oracle.evaluateAll(batch), want);
    EXPECT_EQ(oracle.remotePoints(), batch.size());

    // The two model families genuinely disagree, or this test would
    // pass with the ModelKind plumbing broken.
    const std::vector<double> rbf_vals =
        serve::predictWithSnapshot(snap, batch);
    EXPECT_NE(want, rbf_vals);
    server.stop();
    ::unlink(path.c_str());
}

TEST(PredictE2E, UnreachableServerFallsBackToLocalSnapshot)
{
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const auto batch = queryBatch();
    serve::RemoteOptions opts =
        fastRemote({uniqueSocket("nobody-listens")});
    opts.connect_timeout_ms = 100;

    serve::PredictOracle oracle(snap, opts);
    expectBitIdentical(oracle.evaluateAll(batch),
                       serve::predictWithSnapshot(snap, batch));
    EXPECT_EQ(oracle.remotePoints(), 0u);
    EXPECT_EQ(oracle.fallbackPoints(), batch.size());
    EXPECT_EQ(oracle.serverVersion(), 0u);
}

TEST(PredictE2E, NoSocketsMeansPureLocalPrediction)
{
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const auto batch = queryBatch(7);
    serve::PredictOracle oracle(snap);
    expectBitIdentical(oracle.evaluateAll(batch),
                       serve::predictWithSnapshot(snap, batch));
    EXPECT_EQ(oracle.fallbackPoints(), batch.size());
}

TEST(PredictE2E, ServerRejectsForeignAndOutOfSpaceQueries)
{
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const std::string path = savedSnapshot(snap, "rej");
    const std::string sock = uniqueSocket("rej");
    serve::SimServer server(predictServer(sock, path));
    server.start();

    // Out-of-space point: every coordinate far above its range.
    serve::PredictRequest req;
    req.points.push_back(
        dspace::DesignPoint(snap.space.size(), 1e9));
    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(), serve::encodePredictRequest(req),
                      1000);
    EXPECT_EQ(serve::readFrame(conn.get(), 5000).type,
              serve::MsgType::Error);

    // Wrong dimensionality.
    req.points = {dspace::DesignPoint(snap.space.size() - 1, 10.0)};
    serve::FdGuard conn2 = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn2.get(), serve::encodePredictRequest(req),
                      1000);
    EXPECT_EQ(serve::readFrame(conn2.get(), 5000).type,
              serve::MsgType::Error);
    server.stop();
    ::unlink(path.c_str());
}

TEST(PredictE2E, MalformedQueryGetsWellFormedErrorServerSurvives)
{
    // A malformed PREDICT (wrong dimensionality, which now raises a
    // typed error on the serve path instead of release-mode UB) must
    // come back as a well-formed Error reply with a message naming
    // the problem — and the server must keep serving afterwards.
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const std::string path = savedSnapshot(snap, "malq");
    const std::string sock = uniqueSocket("malq");
    serve::SimServer server(predictServer(sock, path));
    server.start();

    serve::PredictRequest bad;
    bad.points = {dspace::DesignPoint(snap.space.size() + 3, 10.0)};
    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(), serve::encodePredictRequest(bad),
                      1000);
    const serve::Frame err = serve::readFrame(conn.get(), 5000);
    ASSERT_EQ(err.type, serve::MsgType::Error);
    EXPECT_FALSE(serve::parseError(err.payload).message.empty());

    // Boundary corners (inclusive-bound contract) answered correctly
    // on a fresh connection after the malformed one.
    dspace::DesignPoint lo, hi;
    for (const dspace::Parameter &p : snap.space.params()) {
        lo.push_back(p.minValue());
        hi.push_back(p.maxValue());
    }
    serve::PredictRequest good;
    good.points = {lo, hi};
    serve::FdGuard conn2 = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn2.get(),
                      serve::encodePredictRequest(good), 1000);
    const serve::Frame reply = serve::readFrame(conn2.get(), 5000);
    ASSERT_EQ(reply.type, serve::MsgType::PredictResponse);
    const serve::PredictResponse resp =
        serve::parsePredictResponse(reply.payload);
    expectBitIdentical(resp.values,
                       serve::predictWithSnapshot(snap, good.points));
    server.stop();
    ::unlink(path.c_str());
}

TEST(PredictE2E, ModelInfoDescribesHostedSnapshot)
{
    const serve::ModelSnapshot snap = buildSnapshot(5, 100);
    const std::string path = savedSnapshot(snap, "info");
    const std::string sock = uniqueSocket("info");
    serve::SimServer server(predictServer(sock, path));
    server.start();

    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(),
                      serve::encodeModelInfoRequest(42), 1000);
    const serve::Frame reply = serve::readFrame(conn.get(), 5000);
    ASSERT_EQ(reply.type, serve::MsgType::ModelInfoResponse);
    const serve::ModelInfo info =
        serve::parseModelInfoResponse(reply.payload);
    EXPECT_TRUE(info.loaded);
    EXPECT_EQ(info.model_version, 5u);
    EXPECT_EQ(info.benchmark, "twolf");
    EXPECT_EQ(info.num_bases, snap.network.numBases());
    EXPECT_EQ(info.num_linear_terms, snap.linear.numTerms());
    ASSERT_EQ(info.param_names.size(), snap.space.size());
    for (std::size_t i = 0; i < snap.space.size(); ++i)
        EXPECT_EQ(info.param_names[i], snap.space.param(i).name());
    server.stop();
    ::unlink(path.c_str());
}

TEST(PredictE2E, ServerWithoutModelReportsUnloadedAndRejectsPredict)
{
    const std::string sock = uniqueSocket("empty");
    serve::ServerOptions opts;
    opts.socket_path = sock;
    opts.num_workers = 1;
    serve::SimServer server(opts);
    server.start();
    EXPECT_EQ(server.modelVersion(), 0u);

    {
        // Scoped: the single worker must be free for the next
        // connection.
        serve::FdGuard conn = serve::connectUnix(sock, 1000);
        serve::writeFrame(conn.get(),
                          serve::encodeModelInfoRequest(1), 1000);
        const serve::Frame info_reply =
            serve::readFrame(conn.get(), 5000);
        ASSERT_EQ(info_reply.type, serve::MsgType::ModelInfoResponse);
        EXPECT_FALSE(
            serve::parseModelInfoResponse(info_reply.payload).loaded);
    }

    serve::PredictRequest req;
    req.points = queryBatch(1);
    serve::FdGuard conn2 = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn2.get(), serve::encodePredictRequest(req),
                      1000);
    EXPECT_EQ(serve::readFrame(conn2.get(), 5000).type,
              serve::MsgType::Error);
    server.stop();
}

TEST(PredictE2E, ModelPushIsVersionGated)
{
    const std::string path =
        savedSnapshot(buildSnapshot(2, 100), "gate");
    const std::string sock = uniqueSocket("gate");
    serve::SimServer server(predictServer(sock, path));
    server.start();
    ASSERT_EQ(server.modelVersion(), 2u);

    const auto push = [&](const serve::ModelSnapshot &snap) {
        serve::FdGuard conn = serve::connectUnix(sock, 1000);
        serve::writeFrame(
            conn.get(),
            serve::encodeModelPush(serve::encodeSnapshot(snap)),
            5000);
        const serve::Frame reply = serve::readFrame(conn.get(), 5000);
        EXPECT_EQ(reply.type, serve::MsgType::ModelPushAck);
        return serve::parseModelPushAck(reply.payload);
    };

    // Stale and equal versions are refused and change nothing.
    serve::ModelPushAck ack = push(buildSnapshot(1, 200));
    EXPECT_FALSE(ack.accepted);
    EXPECT_EQ(ack.model_version, 2u);
    ack = push(buildSnapshot(2, 200));
    EXPECT_FALSE(ack.accepted);
    EXPECT_EQ(server.modelVersion(), 2u);
    EXPECT_EQ(server.modelSwaps(), 0u);

    // A greater version swaps.
    ack = push(buildSnapshot(3, 200));
    EXPECT_TRUE(ack.accepted);
    EXPECT_EQ(ack.model_version, 3u);
    EXPECT_EQ(server.modelVersion(), 3u);
    EXPECT_EQ(server.modelSwaps(), 1u);

    // A push that does not even decode is refused without side effects.
    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(),
                      serve::encodeModelPush({1, 2, 3, 4}), 1000);
    const serve::Frame reply = serve::readFrame(conn.get(), 5000);
    ASSERT_EQ(reply.type, serve::MsgType::ModelPushAck);
    EXPECT_FALSE(serve::parseModelPushAck(reply.payload).accepted);
    EXPECT_EQ(server.modelVersion(), 3u);
    server.stop();
    ::unlink(path.c_str());
}

TEST(PredictE2E, HotSwapUnderLoadServesConsistentBitsAndVersions)
{
    // Clients hammer PREDICT while the model is pushed from v1 to v2.
    // The contract: zero failed requests, and every response's values
    // are exactly the v1 bits or exactly the v2 bits, matching the
    // version the response echoes — never a torn mixture.
    const serve::ModelSnapshot v1 = buildSnapshot(1, 100);
    const serve::ModelSnapshot v2 = buildSnapshot(2, 999);
    const auto batch = queryBatch(5);
    const std::vector<double> bits_v1 =
        serve::predictWithSnapshot(v1, batch);
    const std::vector<double> bits_v2 =
        serve::predictWithSnapshot(v2, batch);
    ASSERT_NE(bits_v1, bits_v2);

    const std::string path = savedSnapshot(v1, "swap");
    const std::string sock = uniqueSocket("swap");
    serve::SimServer server(predictServer(sock, path, 4));
    server.start();

    constexpr int kClients = 2;
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::atomic<int> saw_v2{0};
    std::atomic<std::uint64_t> responses{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            bool observed_v2 = false;
            serve::FdGuard conn = serve::connectUnix(sock, 1000);
            serve::PredictRequest req;
            req.points = batch;
            const auto frame = serve::encodePredictRequest(req);
            while (!stop.load(std::memory_order_relaxed)) {
                serve::writeFrame(conn.get(), frame, 5000);
                const serve::Frame reply =
                    serve::readFrame(conn.get(), 5000);
                responses.fetch_add(1, std::memory_order_relaxed);
                if (reply.type != serve::MsgType::PredictResponse) {
                    failures.fetch_add(1);
                    continue;
                }
                const serve::PredictResponse resp =
                    serve::parsePredictResponse(reply.payload);
                const std::vector<double> *want = nullptr;
                if (resp.model_version == 1)
                    want = &bits_v1;
                else if (resp.model_version == 2)
                    want = &bits_v2;
                if (want == nullptr || resp.values != *want) {
                    failures.fetch_add(1);
                    continue;
                }
                if (resp.model_version == 2 && !observed_v2) {
                    observed_v2 = true;
                    saw_v2.fetch_add(1);
                }
            }
        });
    }

    // Let the clients land some v1 traffic, then swap mid-stream.
    while (responses.load(std::memory_order_relaxed) < 20)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(server.modelHost().install(v2, "test-push"));

    // Run until every client has seen the new model (bounded wait).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (saw_v2.load() < kClients &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stop.store(true);
    for (auto &t : clients)
        t.join();
    server.stop();
    ::unlink(path.c_str());

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(saw_v2.load(), kClients)
        << "a client never observed the swapped model";
    EXPECT_EQ(server.modelSwaps(), 1u);
    EXPECT_GE(responses.load(), 20u);
}

TEST(PredictE2E, WatchedDirectoryHotSwapsAtomicPublishes)
{
    const fs::path dir = uniqueDir("watch");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string sock = uniqueSocket("watch");

    serve::ServerOptions opts;
    opts.socket_path = sock;
    opts.num_workers = 1;
    opts.model_dir = dir.string();
    opts.model_poll_ms = 25;
    serve::SimServer server(opts);
    server.start();
    EXPECT_EQ(server.modelVersion(), 0u); // empty dir: no model yet

    const auto waitForVersion = [&](std::uint64_t v) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (server.modelVersion() != v &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        return server.modelVersion() == v;
    };

    // An atomic publish (saveSnapshot = temp + rename) is picked up.
    serve::saveSnapshot(buildSnapshot(1, 100),
                        (dir / "model.ppmm").string());
    EXPECT_TRUE(waitForVersion(1)) << "watcher missed the publish";

    // Republishing the same file with a greater version swaps...
    serve::saveSnapshot(buildSnapshot(2, 999),
                        (dir / "model.ppmm").string());
    EXPECT_TRUE(waitForVersion(2)) << "watcher missed the re-publish";
    EXPECT_EQ(server.modelSwaps(), 1u);

    // ...and a stale snapshot appearing later never rolls back.
    serve::saveSnapshot(buildSnapshot(1, 100),
                        (dir / "stale.ppmm").string());
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_EQ(server.modelVersion(), 2u);

    // A file that is not a snapshot is counted, not fatal.
    {
        std::FILE *f = std::fopen(
            (dir / "junk.ppmm").string().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("definitely not a model", f);
        std::fclose(f);
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server.modelHost().loadFailures() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(server.modelHost().loadFailures(), 1u);
    EXPECT_EQ(server.modelVersion(), 2u);

    server.stop();
    fs::remove_all(dir);
}

TEST(PredictE2E, SigkillMidPublishLeavesLoadableSnapshot)
{
    // A publisher killed at an arbitrary instant must never corrupt
    // the snapshot consumers load: saveSnapshot writes a temp file
    // and rename()s, so the target is always a complete image.
    const fs::path dir = uniqueDir("kill");
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "model.ppmm").string();
    serve::saveSnapshot(buildSnapshot(1, 100), path);

    for (int round = 0; round < 4; ++round) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: republish as fast as possible until killed.
            for (std::uint64_t v = 2;; ++v) {
                try {
                    serve::saveSnapshot(
                        buildSnapshot(v, 100 + v), path);
                } catch (...) {
                    ::_exit(1);
                }
            }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(3 + 4 * round));
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        ASSERT_TRUE(WIFSIGNALED(status));

        serve::ModelSnapshot loaded;
        ASSERT_NO_THROW(loaded = serve::loadSnapshot(path))
            << "round " << round
            << ": SIGKILL mid-publish corrupted the snapshot";
        EXPECT_GE(loaded.model_version, 1u);
    }
    fs::remove_all(dir);
}

TEST(PredictE2E, SpawnedServerBinaryServesPredictions)
{
    const serve::ModelSnapshot snap = buildSnapshot(4, 100);
    const auto batch = queryBatch(11);
    const std::vector<double> want =
        serve::predictWithSnapshot(snap, batch);

    const std::string path = savedSnapshot(snap, "bin");
    const std::string sock = uniqueSocket("bin");
    fs::remove(sock);
    const char *argv[] = {PPM_SERVE_BIN,  "--socket", sock.c_str(),
                          "--workers",    "1",        "--predict",
                          path.c_str(),   nullptr};
    pid_t pid = -1;
    ASSERT_EQ(::posix_spawn(&pid, PPM_SERVE_BIN, nullptr, nullptr,
                            const_cast<char *const *>(argv), environ),
              0);
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
        try {
            serve::FdGuard conn = serve::connectUnix(sock, 100);
            serve::writeFrame(conn.get(), serve::encodePing(1), 500);
            up = serve::readFrame(conn.get(), 500).type ==
                 serve::MsgType::Pong;
        } catch (const std::exception &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }
    }
    ASSERT_TRUE(up) << "ppm_serve never came up on " << sock;

    serve::PredictOracle oracle(snap, fastRemote({sock}));
    expectBitIdentical(oracle.evaluateAll(batch), want);
    EXPECT_EQ(oracle.remotePoints(), batch.size());
    EXPECT_EQ(oracle.serverVersion(), 4u);

    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    fs::remove(sock);
    ::unlink(path.c_str());
}

} // namespace
