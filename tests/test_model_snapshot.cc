/**
 * @file
 * Model snapshot suite: golden round-trips (encode -> decode ->
 * encode is byte-identical; save -> load -> predict is bit-identical
 * to the in-process network), semantic validation of every poisoned
 * field class (non-finite floats, non-positive radii, count lies,
 * degenerate parameters), the version-gated hot-swap slot, and the
 * non-finite regression tests for the text serializer that feeds
 * snapshots (rbf/serialize).
 *
 * Corruption tests here are *targeted*: each one patches a known
 * field inside a CRC-corrected image so the semantic check — not the
 * checksum — must catch it. Random corruption lives in
 * test_snapshot_fuzz.cc.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/oracle.hh"
#include "dspace/paper_space.hh"
#include "linreg/model_selection.hh"
#include "math/rng.hh"
#include "rbf/serialize.hh"
#include "rbf/trainer.hh"
#include "sampling/sample_gen.hh"
#include "serve/model_host.hh"
#include "serve/model_snapshot.hh"
#include "sim/simulator.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"
#include "util/crc32.hh"

namespace {

using namespace ppm;
using Bytes = std::vector<std::uint8_t>;

std::string
tempPath(const std::string &tag)
{
    return testing::TempDir() + "ppm_snap_" + tag + "_" +
           std::to_string(::getpid()) + ".ppmm";
}

/**
 * One genuinely trained model (the fig4/table3 pipeline in
 * miniature): twolf trace, discrepancy-optimized LHS, simulated
 * responses, AICc-selected RBF network plus the linear baseline.
 * Trained once and reused — the suite exercises serialization, not
 * the trainer.
 */
const serve::ModelSnapshot &
trainedSnapshot()
{
    static const serve::ModelSnapshot snap = [] {
        const auto space = dspace::paperTrainSpace();
        const auto trace = trace::generateTrace(
            trace::profileByName("twolf"), 20000);
        core::SimulatorOracle oracle(space, trace);
        math::Rng rng(11);
        const auto sample =
            sampling::bestLatinHypercube(space, 20, 8, rng);
        const std::vector<double> ys =
            oracle.evaluateAll(sample.points);
        std::vector<dspace::UnitPoint> xs;
        for (const auto &p : sample.points)
            xs.push_back(space.toUnit(p));
        const rbf::TrainedRbf trained = rbf::trainRbfModel(xs, ys);
        const linreg::SelectedLinearModel linear =
            linreg::fitSelectedLinearModel(xs, ys);

        serve::ModelSnapshot s;
        s.model_version = 7;
        s.benchmark = "twolf";
        s.metric = core::Metric::Cpi;
        s.trace_length = 20000;
        s.warmup = 0;
        s.train_points = 20;
        s.p_min = static_cast<std::uint32_t>(trained.p_min);
        s.alpha = trained.alpha;
        s.space = space;
        s.network = trained.network;
        s.linear = linear.model;
        return s;
    }();
    return snap;
}

/** Test query batch inside the trained space. */
std::vector<dspace::DesignPoint>
queryPoints(int n)
{
    const auto space = dspace::paperTrainSpace();
    math::Rng rng(29);
    std::vector<dspace::DesignPoint> points;
    for (int i = 0; i < n; ++i)
        points.push_back(space.randomPoint(rng));
    return points;
}

/**
 * Overwrite payload bytes [offset, offset + bytes.size()) of a
 * snapshot image and re-stamp the CRC trailer, producing a
 * checksum-valid image only the semantic validation can reject.
 */
Bytes
patchPayload(Bytes image, std::size_t offset, const Bytes &bytes)
{
    const std::size_t payload_off = serve::kSnapshotHeaderSize;
    const std::size_t payload_len =
        image.size() - payload_off - 4;
    EXPECT_LE(offset + bytes.size(), payload_len);
    std::memcpy(image.data() + payload_off + offset, bytes.data(),
                bytes.size());
    const std::uint32_t crc =
        util::crc32(image.data() + payload_off, payload_len);
    for (int i = 0; i < 4; ++i)
        image[image.size() - 4 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(crc >> (8 * i));
    return image;
}

Bytes
f64Bytes(double v)
{
    Bytes b(sizeof(double));
    std::memcpy(b.data(), &v, sizeof(double));
    return b;
}

/**
 * Payload offset where two images differ (they must). Used to locate
 * a float field byte-exactly without replicating layout arithmetic.
 */
std::size_t
firstDiffOffset(const Bytes &a, const Bytes &b)
{
    EXPECT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return i - serve::kSnapshotHeaderSize;
    ADD_FAILURE() << "images are identical";
    return 0;
}

TEST(ModelSnapshot, EncodeDecodeEncodeIsByteIdentical)
{
    const serve::ModelSnapshot &snap = trainedSnapshot();
    const Bytes image = serve::encodeSnapshot(snap);
    const serve::ModelSnapshot decoded = serve::decodeSnapshot(image);
    EXPECT_EQ(decoded.model_version, snap.model_version);
    EXPECT_EQ(decoded.benchmark, snap.benchmark);
    EXPECT_EQ(decoded.metric, snap.metric);
    EXPECT_EQ(decoded.trace_length, snap.trace_length);
    EXPECT_EQ(decoded.warmup, snap.warmup);
    EXPECT_EQ(decoded.train_points, snap.train_points);
    EXPECT_EQ(decoded.p_min, snap.p_min);
    EXPECT_EQ(decoded.alpha, snap.alpha);
    EXPECT_EQ(decoded.space.size(), snap.space.size());
    EXPECT_EQ(decoded.network.numBases(), snap.network.numBases());
    EXPECT_EQ(decoded.linear.terms(), snap.linear.terms());
    EXPECT_EQ(decoded.linear.coefficients(),
              snap.linear.coefficients());
    // The strongest equality there is: re-encoding the decoded model
    // reproduces the image byte for byte.
    EXPECT_EQ(serve::encodeSnapshot(decoded), image);
}

TEST(ModelSnapshot, SaveLoadPredictIsBitIdenticalToInProcessModel)
{
    const serve::ModelSnapshot &snap = trainedSnapshot();
    const std::string path = tempPath("roundtrip");
    serve::saveSnapshot(snap, path);
    const serve::ModelSnapshot loaded = serve::loadSnapshot(path);
    ::unlink(path.c_str());

    const auto points = queryPoints(40);
    std::vector<dspace::UnitPoint> units;
    for (const auto &p : points)
        units.push_back(snap.space.toUnit(p));
    const std::vector<double> direct = snap.network.predict(units);
    const std::vector<double> via_snapshot =
        serve::predictWithSnapshot(loaded, points);
    ASSERT_EQ(via_snapshot.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(std::memcmp(&via_snapshot[i], &direct[i],
                              sizeof(double)),
                  0)
            << "prediction " << i << " is not bit-identical";
}

TEST(ModelSnapshot, LinearBaselinePredictsBitIdentically)
{
    const serve::ModelSnapshot &snap = trainedSnapshot();
    const serve::ModelSnapshot loaded =
        serve::decodeSnapshot(serve::encodeSnapshot(snap));
    const auto points = queryPoints(10);
    std::vector<dspace::UnitPoint> units;
    for (const auto &p : points)
        units.push_back(snap.space.toUnit(p));
    const std::vector<double> direct = snap.linear.predict(units);
    const std::vector<double> via_snapshot =
        serve::predictWithSnapshot(loaded, points,
                                   serve::ModelKind::Linear);
    ASSERT_EQ(via_snapshot.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(via_snapshot[i], direct[i]);
}

TEST(ModelSnapshot, RejectsLinearQueryWithoutBaseline)
{
    serve::ModelSnapshot snap = trainedSnapshot();
    snap.linear = linreg::LinearModel();
    const serve::ModelSnapshot loaded =
        serve::decodeSnapshot(serve::encodeSnapshot(snap));
    EXPECT_TRUE(loaded.linear.empty());
    EXPECT_THROW(serve::predictWithSnapshot(
                     loaded, queryPoints(1), serve::ModelKind::Linear),
                 serve::SnapshotError);
}

TEST(ModelSnapshot, RejectsQueriesOutsideTheTrainedSpace)
{
    const serve::ModelSnapshot &snap = trainedSnapshot();
    auto point = queryPoints(1).front();
    point[0] = snap.space.param(0).maxValue() * 4;
    EXPECT_THROW(serve::predictWithSnapshot(snap, {point}),
                 serve::SnapshotError);
    point = queryPoints(1).front();
    point.pop_back();
    EXPECT_THROW(serve::predictWithSnapshot(snap, {point}),
                 serve::SnapshotError);
}

TEST(ModelSnapshot, AcceptsQueriesAtExactSpaceBoundary)
{
    // Inclusive-bound contract: the corners of the trained design
    // space are valid queries. A point at exactly min/max in every
    // coordinate — and one a few ulps past the bound, as produced by
    // fromUnit/quantize round trips — must not be rejected.
    const serve::ModelSnapshot &snap = trainedSnapshot();
    dspace::DesignPoint lo, hi, hi_ulps;
    for (const dspace::Parameter &p : snap.space.params()) {
        lo.push_back(p.minValue());
        hi.push_back(p.maxValue());
        double v = p.maxValue();
        for (int i = 0; i < 4; ++i)
            v = std::nextafter(
                v, std::numeric_limits<double>::infinity());
        hi_ulps.push_back(v);
    }
    EXPECT_NO_THROW(serve::predictWithSnapshot(snap, {lo, hi}));
    EXPECT_NO_THROW(serve::predictWithSnapshot(snap, {hi_ulps}));
    // The boundary prediction equals the clamped unit-space one.
    const auto at_hi = serve::predictWithSnapshot(snap, {hi});
    const auto at_hi_ulps =
        serve::predictWithSnapshot(snap, {hi_ulps});
    EXPECT_DOUBLE_EQ(at_hi[0], at_hi_ulps[0]);
}

TEST(ModelSnapshot, RbfQueryWithoutNetworkFailsTyped)
{
    // Hand-assembled snapshot with no network: the serve path throws
    // SnapshotError instead of reaching the network's logic_error.
    serve::ModelSnapshot snap;
    snap.space = trainedSnapshot().space;
    EXPECT_THROW(serve::predictWithSnapshot(snap, queryPoints(1)),
                 serve::SnapshotError);
}

TEST(ModelSnapshot, EncodeRejectsNonFiniteWeight)
{
    serve::ModelSnapshot snap = trainedSnapshot();
    std::vector<double> weights = snap.network.weights();
    weights.back() = std::numeric_limits<double>::quiet_NaN();
    snap.network = rbf::RbfNetwork(snap.network.bases(),
                                   std::move(weights));
    EXPECT_THROW(serve::encodeSnapshot(snap), serve::SnapshotError);
}

TEST(ModelSnapshot, EncodeRejectsVersionZero)
{
    serve::ModelSnapshot snap = trainedSnapshot();
    snap.model_version = 0;
    EXPECT_THROW(serve::encodeSnapshot(snap), serve::SnapshotError);
}

TEST(ModelSnapshot, DecodeRejectsVersionZero)
{
    // model_version is the first payload field; zero it and fix the
    // CRC so only the semantic check can object.
    const Bytes image = serve::encodeSnapshot(trainedSnapshot());
    const Bytes zeroed =
        patchPayload(image, 0, Bytes(8, 0));
    EXPECT_THROW(serve::decodeSnapshot(zeroed), serve::SnapshotError);
}

TEST(ModelSnapshot, DecodeRejectsNonFiniteWeightBytes)
{
    // Locate the last output weight by diffing two images that
    // differ only in that weight, then poison it in place.
    serve::ModelSnapshot snap = trainedSnapshot();
    const Bytes image = serve::encodeSnapshot(snap);
    std::vector<double> weights = snap.network.weights();
    weights.back() += 1.0;
    snap.network =
        rbf::RbfNetwork(snap.network.bases(), std::move(weights));
    const std::size_t weight_off =
        firstDiffOffset(image, serve::encodeSnapshot(snap));

    for (double poison :
         {std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()}) {
        const Bytes bad =
            patchPayload(image, weight_off, f64Bytes(poison));
        EXPECT_THROW(serve::decodeSnapshot(bad),
                     serve::SnapshotError);
    }
}

TEST(ModelSnapshot, DecodeRejectsBadRadiusBytes)
{
    // Same diff trick for the first basis radius: NaN, zero, and
    // negative radii must all be rejected before GaussianBasis is
    // constructed (whose contract requires strictly positive radii).
    serve::ModelSnapshot snap = trainedSnapshot();
    const Bytes image = serve::encodeSnapshot(snap);
    std::vector<rbf::GaussianBasis> bases = snap.network.bases();
    std::vector<double> radius = bases.front().radius();
    radius.front() *= 2;
    bases.front() =
        rbf::GaussianBasis(bases.front().center(), radius);
    snap.network = rbf::RbfNetwork(std::move(bases),
                                   snap.network.weights());
    const std::size_t radius_off =
        firstDiffOffset(image, serve::encodeSnapshot(snap));

    for (double poison : {std::numeric_limits<double>::quiet_NaN(),
                          0.0, -0.25}) {
        const Bytes bad =
            patchPayload(image, radius_off, f64Bytes(poison));
        EXPECT_THROW(serve::decodeSnapshot(bad),
                     serve::SnapshotError);
    }
}

TEST(ModelSnapshot, DecodeRejectsHeaderCorruption)
{
    const Bytes image = serve::encodeSnapshot(trainedSnapshot());

    Bytes bad_magic = image;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(serve::decodeSnapshot(bad_magic),
                 serve::SnapshotError);

    Bytes bad_format = image;
    bad_format[4] += 1;
    EXPECT_THROW(serve::decodeSnapshot(bad_format),
                 serve::SnapshotError);

    Bytes bad_flags = image;
    bad_flags[6] = 1;
    EXPECT_THROW(serve::decodeSnapshot(bad_flags),
                 serve::SnapshotError);

    Bytes bad_len = image;
    bad_len[8] += 1;
    EXPECT_THROW(serve::decodeSnapshot(bad_len),
                 serve::SnapshotError);

    Bytes bad_crc = image;
    bad_crc.back() ^= 0x01;
    EXPECT_THROW(serve::decodeSnapshot(bad_crc),
                 serve::SnapshotError);
}

TEST(ModelSnapshot, DecodeRejectsEveryTruncation)
{
    const Bytes image = serve::encodeSnapshot(trainedSnapshot());
    // Every 7th length keeps the sweep fast on a multi-KB image;
    // the fuzz suite covers random cuts of every frame anyway.
    for (std::size_t n = 0; n < image.size(); n += 7) {
        EXPECT_THROW(serve::decodeSnapshot(image.data(), n),
                     serve::SnapshotError)
            << "prefix length " << n;
    }
}

TEST(ModelSnapshot, LoadRejectsMissingFile)
{
    EXPECT_THROW(serve::loadSnapshot(tempPath("nonexistent")),
                 serve::SnapshotError);
}

TEST(ModelSnapshot, SnapshotErrorIsAProtocolError)
{
    // Transport code that catches ProtocolError must also cover
    // snapshot validation failures (the ModelPush server path).
    const Bytes garbage = {1, 2, 3};
    EXPECT_THROW(serve::decodeSnapshot(garbage),
                 serve::ProtocolError);
}

TEST(ModelHost, InstallIsVersionGated)
{
    serve::ModelHost host;
    EXPECT_EQ(host.current(), nullptr);
    EXPECT_EQ(host.version(), 0u);

    serve::ModelSnapshot v2 = trainedSnapshot();
    v2.model_version = 2;
    EXPECT_TRUE(host.install(v2, "test"));
    EXPECT_EQ(host.version(), 2u);
    EXPECT_EQ(host.swaps(), 0u); // first install is not a swap

    // Stale and equal versions are refused; the active model stays.
    serve::ModelSnapshot v1 = trainedSnapshot();
    v1.model_version = 1;
    EXPECT_FALSE(host.install(v1, "test"));
    EXPECT_FALSE(host.install(v2, "test"));
    EXPECT_EQ(host.version(), 2u);
    EXPECT_EQ(host.swaps(), 0u);

    serve::ModelSnapshot v3 = trainedSnapshot();
    v3.model_version = 3;
    EXPECT_TRUE(host.install(v3, "test"));
    EXPECT_EQ(host.version(), 3u);
    EXPECT_EQ(host.swaps(), 1u);
}

TEST(ModelHost, OldHandleSurvivesASwap)
{
    serve::ModelHost host;
    serve::ModelSnapshot v1 = trainedSnapshot();
    v1.model_version = 1;
    host.install(v1, "test");
    const auto held = host.current();

    serve::ModelSnapshot v2 = trainedSnapshot();
    v2.model_version = 2;
    host.install(v2, "test");

    // The pre-swap handle still answers with the old model — the
    // in-flight-batch guarantee in miniature.
    EXPECT_EQ(held->model_version, 1u);
    EXPECT_EQ(host.current()->model_version, 2u);
    const auto points = queryPoints(3);
    EXPECT_EQ(serve::predictWithSnapshot(*held, points),
              serve::predictWithSnapshot(v1, points));
}

TEST(ModelHost, LoadFailuresAreCountedNotFatal)
{
    serve::ModelHost host;
    const std::string path = tempPath("corrupt");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a snapshot", f);
        std::fclose(f);
    }
    EXPECT_FALSE(host.loadFile(path));
    EXPECT_EQ(host.loadFailures(), 1u);
    EXPECT_EQ(host.current(), nullptr);
    ::unlink(path.c_str());
}

TEST(RbfSerialize, SaveRejectsNonFiniteWeight)
{
    // Regression: least squares on a degenerate system can emit NaN
    // weights; serializing one used to round-trip silently and
    // poison every prediction served from the reloaded model.
    rbf::RbfNetwork network(
        {rbf::GaussianBasis({0.5}, {0.5})},
        {std::numeric_limits<double>::quiet_NaN()});
    std::ostringstream os;
    EXPECT_THROW(rbf::saveNetwork(network, os), std::runtime_error);

    rbf::RbfNetwork inf_net(
        {rbf::GaussianBasis({0.5}, {0.5})},
        {std::numeric_limits<double>::infinity()});
    std::ostringstream os2;
    EXPECT_THROW(rbf::saveNetwork(inf_net, os2), std::runtime_error);
}

TEST(RbfSerialize, LoadRejectsNonFiniteAndNonPositiveFields)
{
    // Whether the stream parses "nan" to a NaN (then the finiteness
    // check fires) or refuses the token (then the truncation check
    // fires), the load must throw — never return a poisoned network.
    const std::string header = "ppm-rbfnet 1\ndims 1 bases 1\n";
    for (const char *line :
         {"0.5 0.5 nan\n", "0.5 nan 1.0\n", "nan 0.5 1.0\n",
          "0.5 0.5 inf\n", "0.5 0 1.0\n", "0.5 -1 1.0\n"}) {
        std::istringstream is(header + line);
        EXPECT_THROW((void)rbf::loadNetwork(is), std::runtime_error)
            << "line: " << line;
    }
}

TEST(RbfSerialize, FiniteNetworkStillRoundTrips)
{
    const rbf::RbfNetwork network(
        {rbf::GaussianBasis({0.25, 0.75}, {0.5, 1.5})},
        {2.125});
    std::stringstream ss;
    rbf::saveNetwork(network, ss);
    const rbf::RbfNetwork loaded = rbf::loadNetwork(ss);
    ASSERT_EQ(loaded.numBases(), 1u);
    EXPECT_EQ(loaded.weights()[0], 2.125);
    EXPECT_EQ(loaded.bases()[0].center(),
              network.bases()[0].center());
    EXPECT_EQ(loaded.bases()[0].radius(),
              network.bases()[0].radius());
}

} // namespace
