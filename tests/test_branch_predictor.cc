/**
 * @file
 * Unit tests for the gshare + BTB + RAS branch predictor.
 */

#include <gtest/gtest.h>

#include "sim/branch_predictor.hh"

namespace {

using namespace ppm::sim;
using ppm::trace::OpClass;
using ppm::trace::TraceInstruction;

TraceInstruction
branch(OpClass op, std::uint64_t pc, std::uint64_t target, bool taken)
{
    TraceInstruction i;
    i.op = op;
    i.pc = pc;
    i.branch_target = target;
    i.taken = taken;
    return i;
}

/** Run predict+update once; returns the resolution. */
BranchPredictor::Resolution
step(BranchPredictor &bp, const TraceInstruction &i)
{
    const BranchPrediction p = bp.predict(i);
    return bp.update(i, p);
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto b = branch(OpClass::BranchCond, 0x1000, 0x2000, true);
    std::uint64_t early_mispredicts = 0;
    for (int k = 0; k < 50; ++k)
        step(bp, b);
    early_mispredicts = bp.stats().mispredicts;
    for (int k = 0; k < 1000; ++k)
        step(bp, b);
    // Once warm, no further direction mispredicts.
    EXPECT_EQ(bp.stats().mispredicts, early_mispredicts);
    EXPECT_EQ(bp.stats().cond_branches, 1050u);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto b = branch(OpClass::BranchCond, 0x1000, 0x2000, false);
    for (int k = 0; k < 50; ++k)
        step(bp, b);
    const auto warm = bp.stats().mispredicts;
    for (int k = 0; k < 500; ++k)
        step(bp, b);
    EXPECT_EQ(bp.stats().mispredicts, warm);
}

TEST(BranchPredictor, LearnsShortLoopPattern)
{
    // Trip-count-4 loop (TTTN repeated): gshare history learns it.
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto b = branch(OpClass::BranchCond, 0x1000, 0x800, true);
    for (int rep = 0; rep < 300; ++rep) {
        for (int k = 0; k < 4; ++k) {
            b.taken = k < 3;
            step(bp, b);
        }
    }
    const auto warm = bp.stats().mispredicts;
    for (int rep = 0; rep < 100; ++rep) {
        for (int k = 0; k < 4; ++k) {
            b.taken = k < 3;
            step(bp, b);
        }
    }
    // Warmed-up pattern: essentially no new mispredicts.
    EXPECT_LE(bp.stats().mispredicts - warm, 4u);
}

TEST(BranchPredictor, UnconditionalTakenWithBtbHitIsFree)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto b = branch(OpClass::BranchUncond, 0x3000, 0x5000, true);
    auto first = step(bp, b); // BTB cold: decode bubble, not redirect
    EXPECT_FALSE(first.mispredict);
    EXPECT_TRUE(first.btb_bubble);
    auto second = step(bp, b);
    EXPECT_FALSE(second.mispredict);
    EXPECT_FALSE(second.btb_bubble);
    EXPECT_EQ(bp.stats().btb_bubbles, 1u);
}

TEST(BranchPredictor, StaleBtbTargetIsFullRedirect)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto b = branch(OpClass::BranchUncond, 0x3000, 0x5000, true);
    step(bp, b); // installs target 0x5000
    step(bp, b);
    b.branch_target = 0x7000; // target changed (indirect-like)
    auto res = step(bp, b);
    EXPECT_TRUE(res.mispredict);
}

TEST(BranchPredictor, RasPredictsMatchedCallReturn)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto call = branch(OpClass::BranchCall, 0x1000, 0x9000, true);
    auto ret = branch(OpClass::BranchRet, 0x9040, 0x1004, true);
    step(bp, call);
    auto res = step(bp, ret);
    EXPECT_FALSE(res.mispredict);
    EXPECT_EQ(bp.stats().mispredicts, 0u);
}

TEST(BranchPredictor, RasUnderflowMispredictsReturn)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto ret = branch(OpClass::BranchRet, 0x9040, 0x1234, true);
    auto res = step(bp, ret);
    EXPECT_TRUE(res.mispredict);
}

TEST(BranchPredictor, RasDepthOverflowLosesOldEntries)
{
    ProcessorConfig cfg;
    cfg.ras_entries = 4;
    BranchPredictor bp(cfg);
    // 6 nested calls overflow a 4-deep RAS; the two oldest returns
    // must mispredict.
    for (int d = 0; d < 6; ++d) {
        auto call = branch(OpClass::BranchCall,
                           0x1000 + 0x100 * d, 0x9000 + 0x100 * d,
                           true);
        step(bp, call);
    }
    std::uint64_t mispredicts = 0;
    for (int d = 5; d >= 0; --d) {
        auto ret = branch(OpClass::BranchRet, 0x9040 + 0x100 * d,
                          0x1004 + 0x100 * d, true);
        if (step(bp, ret).mispredict)
            ++mispredicts;
    }
    EXPECT_EQ(mispredicts, 2u);
}

TEST(BranchPredictor, DistinguishesInterleavedBranches)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto t = branch(OpClass::BranchCond, 0x1000, 0x800, true);
    auto n = branch(OpClass::BranchCond, 0x2000, 0x900, false);
    for (int k = 0; k < 200; ++k) {
        step(bp, t);
        step(bp, n);
    }
    const auto warm = bp.stats().mispredicts;
    for (int k = 0; k < 200; ++k) {
        step(bp, t);
        step(bp, n);
    }
    EXPECT_EQ(bp.stats().mispredicts, warm);
}

TEST(BranchPredictor, ResetClearsEverything)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    auto b = branch(OpClass::BranchCond, 0x1000, 0x800, true);
    for (int k = 0; k < 100; ++k)
        step(bp, b);
    bp.reset();
    EXPECT_EQ(bp.stats().branches, 0u);
    EXPECT_EQ(bp.stats().mispredicts, 0u);
    // Cold again: the first taken needs the BTB refilled.
    auto res = step(bp, b);
    EXPECT_TRUE(res.mispredict || res.btb_bubble);
}

TEST(BranchPredictor, StatsCountKinds)
{
    ProcessorConfig cfg;
    BranchPredictor bp(cfg);
    step(bp, branch(OpClass::BranchCond, 0x10, 0x20, true));
    step(bp, branch(OpClass::BranchUncond, 0x30, 0x40, true));
    step(bp, branch(OpClass::BranchCall, 0x50, 0x60, true));
    EXPECT_EQ(bp.stats().branches, 3u);
    EXPECT_EQ(bp.stats().cond_branches, 1u);
}

} // namespace
