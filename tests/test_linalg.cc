/**
 * @file
 * Unit tests for the linear solvers: Cholesky, Gaussian elimination,
 * Householder QR, and the least-squares front end with ridge fallback.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/linalg.hh"
#include "math/rng.hh"

namespace {

using namespace ppm::math;

TEST(Cholesky, FactorOfKnownMatrix)
{
    // a = L L^T with L = [[2,0],[1,3]]
    Matrix a{{4, 2}, {2, 10}};
    auto l = cholesky(a);
    ASSERT_TRUE(l.has_value());
    EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
    EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
    EXPECT_NEAR((*l)(1, 1), 3.0, 1e-12);
    EXPECT_NEAR((*l)(0, 1), 0.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite)
{
    Matrix a{{1, 2}, {2, 1}}; // eigenvalues 3, -1
    EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, RejectsNegativeDefinite)
{
    Matrix a{{-4, 0}, {0, -1}};
    EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, SolveRecoversKnownSolution)
{
    Matrix a{{4, 2}, {2, 10}};
    Vector x_true{1.0, -2.0};
    Vector b = a * x_true;
    auto x = choleskySolve(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 1.0, 1e-10);
    EXPECT_NEAR((*x)[1], -2.0, 1e-10);
}

TEST(Cholesky, SolveLargeRandomSpd)
{
    Rng rng(42);
    const std::size_t n = 30;
    Matrix g(n, n);
    // Random A, then G = A^T A + I is SPD.
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = rng.gaussian();
    g = a.gram();
    for (std::size_t i = 0; i < n; ++i)
        g(i, i) += 1.0;
    Vector x_true(n);
    for (auto &v : x_true)
        v = rng.uniform(-2, 2);
    Vector b = g * x_true;
    auto x = choleskySolve(g, b);
    ASSERT_TRUE(x.has_value());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

TEST(GaussSolve, KnownSystem)
{
    Matrix a{{2, 1}, {1, 3}};
    Vector b{5, 10};
    auto x = gaussSolve(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 1.0, 1e-12);
    EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(GaussSolve, NeedsPivoting)
{
    // Leading zero forces a row swap.
    Matrix a{{0, 1}, {1, 0}};
    Vector b{2, 3};
    auto x = gaussSolve(a, b);
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 3.0, 1e-12);
    EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(GaussSolve, SingularReturnsNullopt)
{
    Matrix a{{1, 2}, {2, 4}};
    EXPECT_FALSE(gaussSolve(a, {1, 2}).has_value());
}

TEST(QrSolve, ExactSquareSystem)
{
    Matrix a{{1, 1}, {1, -1}};
    Vector x_true{2, 3};
    Vector y = a * x_true;
    auto x = qrSolve(a, y);
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 2.0, 1e-10);
    EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(QrSolve, OverdeterminedProjects)
{
    // Fit y = c0 + c1 x to exactly linear data: must recover it.
    Matrix a{{1, 0}, {1, 1}, {1, 2}, {1, 3}};
    Vector y{1, 3, 5, 7}; // y = 1 + 2x
    auto x = qrSolve(a, y);
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 1.0, 1e-10);
    EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(QrSolve, RankDeficientReturnsNullopt)
{
    Matrix a{{1, 2}, {2, 4}, {3, 6}}; // col2 = 2 * col1
    EXPECT_FALSE(qrSolve(a, {1, 2, 3}).has_value());
}

TEST(LeastSquares, MinimizesResidual)
{
    // Overdetermined noisy fit: residual must be orthogonal to the
    // column space (normal equations hold).
    Matrix a{{1, 0.5}, {1, 1.5}, {1, 2.5}, {1, 4.0}};
    Vector y{1.1, 2.9, 5.2, 8.1};
    auto fit = leastSquares(a, y);
    ASSERT_EQ(fit.coefficients.size(), 2u);
    const Vector fitted = a * fit.coefficients;
    const Vector resid = subtract(y, fitted);
    const Vector atr = a.transposeTimes(resid);
    EXPECT_NEAR(atr[0], 0.0, 1e-9);
    EXPECT_NEAR(atr[1], 0.0, 1e-9);
    EXPECT_FALSE(fit.regularized);
    // Reported RSS matches the actual residual.
    EXPECT_NEAR(fit.residual_sum_squares, dot(resid, resid), 1e-9);
}

TEST(LeastSquares, FallsBackToRidgeOnCollinearColumns)
{
    Matrix a{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
    Vector y{1, 2, 3, 4};
    auto fit = leastSquares(a, y);
    EXPECT_TRUE(fit.regularized);
    // Even regularized, predictions should be close to the data.
    const Vector fitted = a * fit.coefficients;
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(fitted[i], y[i], 1e-3);
}

TEST(RidgeSolve, ShrinksTowardZeroWithHugePenalty)
{
    Matrix a{{1, 0}, {0, 1}};
    Vector y{10, -10};
    Vector x = ridgeSolve(a, y, 1e9);
    EXPECT_NEAR(x[0], 0.0, 1e-6);
    EXPECT_NEAR(x[1], 0.0, 1e-6);
}

TEST(RidgeSolve, SmallPenaltyNearExact)
{
    Matrix a{{2, 0}, {0, 4}};
    Vector y{2, 8};
    Vector x = ridgeSolve(a, y, 1e-12);
    EXPECT_NEAR(x[0], 1.0, 1e-5);
    EXPECT_NEAR(x[1], 2.0, 1e-5);
}

TEST(LeastSquares, RandomizedAgreementWithQr)
{
    Rng rng(7);
    const std::size_t m = 40, n = 6;
    Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = rng.gaussian();
    Vector y(m);
    for (auto &v : y)
        v = rng.gaussian();
    auto fit = leastSquares(a, y);
    auto qr = qrSolve(a, y);
    ASSERT_TRUE(qr.has_value());
    for (std::size_t j = 0; j < n; ++j)
        EXPECT_NEAR(fit.coefficients[j], (*qr)[j], 1e-9);
}

} // namespace
