/**
 * @file
 * Unit tests for regression trees (paper Sec 2.4) and split reporting
 * (Table 5 / Fig 5 machinery).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dspace/design_space.hh"
#include "math/rng.hh"
#include "tree/flat_tree.hh"
#include "tree/regression_tree.hh"
#include "tree/split_report.hh"

namespace {

using namespace ppm;
using namespace ppm::tree;

TEST(RegressionTree, LeafStdIsResponseSpreadOfLeaf)
{
    // p_min large enough that the root is the only node: leafStd is
    // the population standard deviation of all responses.
    const std::vector<dspace::UnitPoint> xs = {
        {0.1, 0.1}, {0.2, 0.9}, {0.8, 0.2}, {0.9, 0.8}};
    const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
    RegressionTree root_only(xs, ys, 4);
    ASSERT_EQ(root_only.leafCount(), 1u);
    // mean 4, variance ((−3)²+(−1)²+1²+3²)/4 = 5.
    EXPECT_NEAR(root_only.leafStd({0.5, 0.5}), std::sqrt(5.0), 1e-12);

    // A step response split at x0 = 0.5: each leaf holds two points
    // with spread 1 about its own mean.
    RegressionTree split_tree(xs, ys, 2);
    ASSERT_GE(split_tree.leafCount(), 2u);
    EXPECT_NEAR(split_tree.leafStd({0.0, 0.5}), 1.0, 1e-12);
    EXPECT_NEAR(split_tree.leafStd({1.0, 0.5}), 1.0, 1e-12);

    // Singleton leaves have zero spread.
    RegressionTree singleton(xs, ys, 1);
    EXPECT_DOUBLE_EQ(singleton.leafStd({0.05, 0.05}), 0.0);

    // nodes() exports the same statistic.
    for (const auto &info : root_only.nodes())
        if (info.is_leaf)
            EXPECT_NEAR(info.std_response, std::sqrt(5.0), 1e-12);
}

TEST(RegressionTree, SinglePointIsLeafOnlyTree)
{
    RegressionTree t({{0.5, 0.5}}, {3.0}, 1);
    EXPECT_EQ(t.nodeCount(), 1u);
    EXPECT_EQ(t.leafCount(), 1u);
    EXPECT_EQ(t.depth(), 0);
    EXPECT_DOUBLE_EQ(t.predict({0.1, 0.9}), 3.0);
    EXPECT_TRUE(t.splits().empty());
}

TEST(RegressionTree, StepFunctionSplitsAtBoundary)
{
    // y = 0 for x < 0.5, y = 1 for x > 0.5: one split at ~0.5.
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 10; ++i) {
        const double x = (i + 0.5) / 10.0;
        xs.push_back({x});
        ys.push_back(x < 0.5 ? 0.0 : 1.0);
    }
    RegressionTree t(xs, ys, 5);
    ASSERT_FALSE(t.splits().empty());
    const SplitRecord &first = t.splits().front();
    EXPECT_EQ(first.parameter, 0u);
    EXPECT_NEAR(first.value, 0.5, 1e-9);
    EXPECT_EQ(first.depth, 1);
    EXPECT_DOUBLE_EQ(t.predict({0.2}), 0.0);
    EXPECT_DOUBLE_EQ(t.predict({0.8}), 1.0);
}

TEST(RegressionTree, PicksTheInformativeDimension)
{
    // y depends only on dimension 1; the first split must use it.
    math::Rng rng(1);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 60; ++i) {
        const double a = rng.uniform(), b = rng.uniform();
        xs.push_back({a, b});
        ys.push_back(b > 0.4 ? 5.0 : 1.0);
    }
    RegressionTree t(xs, ys, 10);
    ASSERT_FALSE(t.splits().empty());
    EXPECT_EQ(t.splits().front().parameter, 1u);
    EXPECT_NEAR(t.splits().front().value, 0.4, 0.15);
}

TEST(RegressionTree, PminOneMakesSingletonLeaves)
{
    math::Rng rng(2);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 32; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.uniform());
    }
    RegressionTree t(xs, ys, 1);
    // With p_min = 1 and distinct points, leaves = points.
    EXPECT_EQ(t.leafCount(), xs.size());
    EXPECT_EQ(t.nodeCount(), 2 * xs.size() - 1);
    // Prediction at a training point returns its response.
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_DOUBLE_EQ(t.predict(xs[i]), ys[i]);
}

TEST(RegressionTree, PminLimitsLeafSizes)
{
    math::Rng rng(3);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 64; ++i) {
        xs.push_back({rng.uniform()});
        ys.push_back(rng.uniform());
    }
    const int p_min = 5;
    RegressionTree t(xs, ys, p_min);
    for (const auto &node : t.nodes()) {
        if (node.is_leaf) {
            EXPECT_LE(node.count, static_cast<std::size_t>(p_min));
        }
    }
}

TEST(RegressionTree, IdenticalPointsCannotSplit)
{
    std::vector<dspace::UnitPoint> xs(8, {0.3, 0.7});
    std::vector<double> ys{1, 2, 3, 4, 5, 6, 7, 8};
    RegressionTree t(xs, ys, 1);
    EXPECT_EQ(t.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(t.predict({0.3, 0.7}), 4.5);
}

TEST(RegressionTree, RootNodeCoversUnitCube)
{
    math::Rng rng(4);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(xs.back()[0]);
    }
    RegressionTree t(xs, ys, 4);
    const auto nodes = t.nodes();
    ASSERT_FALSE(nodes.empty());
    const NodeInfo &root = nodes.front();
    EXPECT_EQ(root.depth, 0);
    EXPECT_EQ(root.count, xs.size());
    for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_DOUBLE_EQ(root.center[k], 0.5);
        EXPECT_DOUBLE_EQ(root.size[k], 1.0);
    }
}

TEST(RegressionTree, ChildLinksConsistent)
{
    math::Rng rng(5);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 40; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(xs.back()[0] * 3 + xs.back()[1]);
    }
    RegressionTree t(xs, ys, 2);
    const auto nodes = t.nodes();
    std::size_t internal = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto &node = nodes[i];
        if (node.is_leaf) {
            EXPECT_EQ(node.left_child, NodeInfo::npos);
            EXPECT_EQ(node.right_child, NodeInfo::npos);
            continue;
        }
        ++internal;
        ASSERT_LT(node.left_child, nodes.size());
        ASSERT_LT(node.right_child, nodes.size());
        const auto &l = nodes[node.left_child];
        const auto &r = nodes[node.right_child];
        EXPECT_EQ(l.depth, node.depth + 1);
        EXPECT_EQ(r.depth, node.depth + 1);
        // Children partition the parent's points.
        EXPECT_EQ(l.count + r.count, node.count);
        // Children's regions tile the parent's region volume.
        double parent_vol = 1, child_vol = 0, lv = 1, rv = 1;
        for (std::size_t k = 0; k < 2; ++k)
            parent_vol *= node.size[k];
        for (std::size_t k = 0; k < 2; ++k) {
            lv *= l.size[k];
            rv *= r.size[k];
        }
        child_vol = lv + rv;
        EXPECT_NEAR(parent_vol, child_vol, 1e-9);
    }
    EXPECT_EQ(internal, t.splits().size());
    EXPECT_EQ(nodes.size(), t.nodeCount());
}

TEST(RegressionTree, SplitsReduceTrainingError)
{
    // The tree's leaf-mean prediction must fit training data at least
    // as well as the global mean.
    math::Rng rng(6);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    double mean = 0;
    for (int i = 0; i < 100; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(std::sin(6 * xs.back()[0]) + xs.back()[1]);
        mean += ys.back();
    }
    mean /= 100;
    double sse_mean = 0, sse_tree = 0;
    RegressionTree t(xs, ys, 4);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sse_mean += (ys[i] - mean) * (ys[i] - mean);
        const double p = t.predict(xs[i]);
        sse_tree += (ys[i] - p) * (ys[i] - p);
    }
    EXPECT_LT(sse_tree, sse_mean * 0.5);
}

TEST(RegressionTree, ErrorReductionsPositive)
{
    math::Rng rng(7);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(xs.back()[0] > 0.5 ? 2.0 + rng.uniform()
                                        : rng.uniform());
    }
    RegressionTree t(xs, ys, 2);
    for (const auto &s : t.splits())
        EXPECT_GE(s.error_reduction, -1e-9);
}

// --- split reporting --------------------------------------------------

dspace::DesignSpace
twoParamSpace()
{
    dspace::DesignSpace s;
    s.add(dspace::Parameter("lat", 1, 4, 4,
                            dspace::Transform::Linear, true));
    s.add(dspace::Parameter("size", 8, 64, 4,
                            dspace::Transform::Log, true));
    return s;
}

TEST(SplitReport, RawValuesUseParameterTransforms)
{
    auto space = twoParamSpace();
    // Response depends on parameter 1 (log-scaled size).
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    math::Rng rng(8);
    for (int i = 0; i < 40; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(xs.back()[1] > 0.5 ? 1.0 : 4.0);
    }
    RegressionTree t(xs, ys, 10);
    auto splits = significantSplits(t, space, 3);
    ASSERT_FALSE(splits.empty());
    EXPECT_EQ(splits.front().parameter, "size");
    // Unit 0.5 on a log 8..64 range is ~22.6 raw.
    EXPECT_NEAR(splits.front().raw_value, std::sqrt(8.0 * 64.0), 8.0);
}

TEST(SplitReport, RankedByErrorReduction)
{
    auto space = twoParamSpace();
    math::Rng rng(9);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 80; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        // Parameter 0 has the dominant effect.
        ys.push_back(10.0 * (xs.back()[0] > 0.5) +
                     1.0 * (xs.back()[1] > 0.5) +
                     0.05 * rng.uniform());
    }
    RegressionTree t(xs, ys, 4);
    auto splits = significantSplits(t, space, 8);
    ASSERT_GE(splits.size(), 2u);
    EXPECT_EQ(splits.front().parameter, "lat");
    for (std::size_t i = 1; i < splits.size(); ++i)
        EXPECT_GE(splits[i - 1].error_reduction,
                  splits[i].error_reduction);
}

TEST(SplitReport, AllSplitsMatchesTree)
{
    auto space = twoParamSpace();
    math::Rng rng(10);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 30; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.uniform());
    }
    RegressionTree t(xs, ys, 2);
    EXPECT_EQ(allSplits(t, space).size(), t.splits().size());
}

TEST(SplitReport, CountPerParameterSums)
{
    auto space = twoParamSpace();
    math::Rng rng(11);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 60; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(xs.back()[0] + 2 * xs.back()[1]);
    }
    RegressionTree t(xs, ys, 3);
    auto counts = splitCountPerParameter(t, space);
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0] + counts[1], t.splits().size());
}

TEST(SplitReport, TopNTruncates)
{
    auto space = twoParamSpace();
    math::Rng rng(12);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 64; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.uniform());
    }
    RegressionTree t(xs, ys, 1);
    EXPECT_EQ(significantSplits(t, space, 5).size(), 5u);
}

TEST(FlatTree, MirrorsTreeShape)
{
    math::Rng rng(71);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 128; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(std::sin(6.0 * xs.back()[0]) + xs.back()[1]);
    }
    const RegressionTree t(xs, ys, 4);
    const FlatTree &f = t.flat();
    EXPECT_EQ(f.nodeCount(), t.nodeCount());
    EXPECT_EQ(f.dimensions(), t.dimensions());
    EXPECT_EQ(f.depth(), t.depth());
}

TEST(FlatTree, SingleAndBatchedTraversalBitIdenticalToTree)
{
    math::Rng rng(72);
    for (int p_min : {1, 4, 16, 200}) {
        std::vector<dspace::UnitPoint> xs;
        std::vector<double> ys;
        for (int i = 0; i < 160; ++i) {
            xs.push_back({rng.uniform(), rng.uniform()});
            ys.push_back(std::cos(9.0 * xs.back()[0]) *
                         xs.back()[1]);
        }
        const RegressionTree t(xs, ys, p_min);
        const FlatTree &f = t.flat();

        std::vector<dspace::UnitPoint> queries;
        for (int i = 0; i < 300; ++i)
            queries.push_back({rng.uniform(), rng.uniform()});
        // Include training points: their coordinates sit exactly on
        // split boundaries, exercising the tie-break (<=) branch.
        queries.insert(queries.end(), xs.begin(), xs.end());

        const auto means = t.predictBatch(queries);
        const auto stds = t.leafStdBatch(queries);
        ASSERT_EQ(means.size(), queries.size());
        for (std::size_t i = 0; i < queries.size(); ++i) {
            EXPECT_DOUBLE_EQ(means[i], t.predict(queries[i]));
            EXPECT_DOUBLE_EQ(stds[i], t.leafStd(queries[i]));
            EXPECT_DOUBLE_EQ(f.predict(queries[i]),
                             t.predict(queries[i]));
            EXPECT_DOUBLE_EQ(f.leafStd(queries[i]),
                             t.leafStd(queries[i]));
        }
    }
}

TEST(FlatTree, BatchDimensionMismatchThrows)
{
    // Checked unconditionally (not assert-only): a short point would
    // read past its coordinates during the descent in release builds.
    math::Rng rng(73);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 32; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(rng.uniform());
    }
    const RegressionTree t(xs, ys, 4);
    EXPECT_THROW(t.predictBatch({{0.5}}), std::invalid_argument);
    EXPECT_THROW(t.leafStdBatch({{0.1, 0.2, 0.3}}),
                 std::invalid_argument);
    // A mismatch anywhere in the batch is rejected before descent.
    EXPECT_THROW(t.flat().predictBatch({{0.1, 0.2}, {0.5}}),
                 std::invalid_argument);
    EXPECT_NO_THROW(t.flat().leafStdBatch({{0.1, 0.2}}));
}

TEST(FlatTree, SingleNodeTree)
{
    const std::vector<dspace::UnitPoint> xs = {{0.5}};
    const std::vector<double> ys = {3.0};
    const RegressionTree t(xs, ys, 1);
    EXPECT_EQ(t.flat().nodeCount(), 1u);
    const auto out = t.predictBatch({{0.1}, {0.9}});
    EXPECT_DOUBLE_EQ(out[0], 3.0);
    EXPECT_DOUBLE_EQ(out[1], 3.0);
    EXPECT_TRUE(t.predictBatch({}).empty());
}

} // namespace
