/**
 * @file
 * Unit tests for the DRAM device timing model, the memory controller
 * (bank + bus contention), and the cache hierarchy composition.
 */

#include <gtest/gtest.h>

#include "sim/dram.hh"
#include "sim/memory_controller.hh"
#include "sim/memory_hierarchy.hh"

namespace {

using namespace ppm::sim;

ProcessorConfig
baseConfig()
{
    ProcessorConfig cfg;
    cfg.validate();
    return cfg;
}

TEST(Dram, RowHitFasterThanRowMiss)
{
    auto cfg = baseConfig();
    Dram dram(cfg);
    const std::uint64_t addr = 0x100000;
    const Tick first = dram.access(addr, 0);       // cold bank: tRCD+tCAS
    const Tick second = dram.access(addr, first);  // row hit: tCAS
    EXPECT_EQ(first, static_cast<Tick>(cfg.dram_trcd + cfg.dram_tcas));
    EXPECT_EQ(second - first, static_cast<Tick>(cfg.dram_tcas));
}

TEST(Dram, RowConflictPaysPrecharge)
{
    auto cfg = baseConfig();
    Dram dram(cfg);
    const std::uint64_t a = 0x100000;
    // Same bank, different row: flip a high bit.
    const std::uint64_t b = a + (static_cast<std::uint64_t>(
        cfg.dram_row_bytes) * cfg.dram_banks);
    ASSERT_EQ(dram.bankOf(a), dram.bankOf(b));
    ASSERT_NE(dram.rowOf(a), dram.rowOf(b));
    const Tick t1 = dram.access(a, 0);
    const Tick t2 = dram.access(b, t1);
    EXPECT_EQ(t2 - t1, static_cast<Tick>(cfg.dram_trp + cfg.dram_trcd +
                                         cfg.dram_tcas));
}

TEST(Dram, BusyBankDelaysNextAccess)
{
    auto cfg = baseConfig();
    Dram dram(cfg);
    const std::uint64_t addr = 0x100000;
    const Tick t1 = dram.access(addr, 0);
    // Request arriving earlier than bank-free still completes after.
    const Tick t2 = dram.access(addr, 0);
    EXPECT_GE(t2, t1);
}

TEST(Dram, DifferentBanksOperateInParallel)
{
    auto cfg = baseConfig();
    Dram dram(cfg);
    const std::uint64_t a = 0;          // bank 0
    const std::uint64_t b = 64;         // bank 1 (line interleaved)
    ASSERT_NE(dram.bankOf(a), dram.bankOf(b));
    const Tick t1 = dram.access(a, 0);
    const Tick t2 = dram.access(b, 0);
    // Equal cold-access latency: no serialization between banks.
    EXPECT_EQ(t1, t2);
}

TEST(Dram, StatsCountRowHits)
{
    auto cfg = baseConfig();
    Dram dram(cfg);
    dram.access(0x1000, 0);
    dram.access(0x1000, 100);
    dram.access(0x1000, 200);
    EXPECT_EQ(dram.stats().requests, 3u);
    EXPECT_EQ(dram.stats().row_hits, 2u);
}

TEST(Dram, ResetClosesRows)
{
    auto cfg = baseConfig();
    Dram dram(cfg);
    dram.access(0x1000, 0);
    dram.reset();
    EXPECT_EQ(dram.stats().requests, 0u);
    const Tick t = dram.access(0x1000, 0);
    EXPECT_EQ(t, static_cast<Tick>(cfg.dram_trcd + cfg.dram_tcas));
}

TEST(MemoryController, ReadIncludesOverheadAndBurst)
{
    auto cfg = baseConfig();
    MemoryController mc(cfg);
    const Tick done = mc.read(0x1000, 0);
    EXPECT_EQ(done, static_cast<Tick>(cfg.memctrl_overhead +
                                      cfg.dram_trcd + cfg.dram_tcas +
                                      cfg.bus_burst_cycles));
}

TEST(MemoryController, BusSerializesConcurrentFills)
{
    auto cfg = baseConfig();
    MemoryController mc(cfg);
    // Two same-cycle requests to different banks share the bus.
    const Tick t1 = mc.read(0, 0);
    const Tick t2 = mc.read(64, 0);
    EXPECT_EQ(t2 - t1, static_cast<Tick>(cfg.bus_burst_cycles));
}

TEST(MemoryController, WritebacksConsumeBandwidth)
{
    auto cfg = baseConfig();
    MemoryController a(cfg), b(cfg);
    // Controller b first absorbs a writeback; a subsequent read on b
    // must finish no earlier than the same read on idle a.
    b.writeback(0x100, 0);
    const Tick ta = a.read(0x200, 0);
    const Tick tb = b.read(0x200, 0);
    EXPECT_GE(tb, ta);
    EXPECT_EQ(b.writebacks(), 1u);
}

TEST(MemoryController, QueueBuildsUpUnderBursts)
{
    auto cfg = baseConfig();
    MemoryController mc(cfg);
    Tick last = 0;
    // 16 simultaneous misses: completion times strictly increase as
    // the bus drains them.
    for (int i = 0; i < 16; ++i) {
        const Tick done = mc.read(static_cast<std::uint64_t>(i) * 64, 0);
        EXPECT_GT(done, last);
        last = done;
    }
}

// --- hierarchy ---------------------------------------------------------

TEST(Hierarchy, Il1HitLatency)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    mem.fetchInstruction(0x1000, 0); // cold
    const Tick hit = mem.fetchInstruction(0x1000, 100);
    EXPECT_EQ(hit, 100u + static_cast<Tick>(cfg.il1_lat));
}

TEST(Hierarchy, Dl1HitLatency)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    mem.load(0x2000, 0);
    const Tick hit = mem.load(0x2000, 50);
    EXPECT_EQ(hit, 50u + static_cast<Tick>(cfg.dl1_lat));
}

TEST(Hierarchy, L2HitLatencyOnDl1Miss)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    mem.load(0x2000, 0); // fills DL1 and L2
    // Evict from DL1 by filling its set; DL1 is 32KB 2-way -> same
    // set repeats every 16KB.
    mem.load(0x2000 + 16 * 1024, 10);
    mem.load(0x2000 + 32 * 1024, 20);
    const Tick t = mem.load(0x2000, 1000); // DL1 miss, L2 hit
    EXPECT_EQ(t, 1000u + static_cast<Tick>(cfg.dl1_lat + cfg.l2_lat));
}

TEST(Hierarchy, ColdLoadGoesToDram)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    const Tick t = mem.load(0x2000, 0);
    const Tick expected = static_cast<Tick>(
        cfg.dl1_lat + cfg.l2_lat + cfg.memctrl_overhead +
        cfg.dram_trcd + cfg.dram_tcas + cfg.bus_burst_cycles);
    EXPECT_EQ(t, expected);
}

TEST(Hierarchy, L2SharedBetweenCodeAndData)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    mem.fetchInstruction(0x40000, 0);
    mem.load(0x40000, 100); // same line: DL1 misses but L2 hits
    EXPECT_EQ(mem.l2().stats().accesses, 2u);
    EXPECT_EQ(mem.l2().stats().misses, 1u);
}

TEST(Hierarchy, StoresAllocateAndDirty)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    mem.store(0x3000, 0);
    EXPECT_TRUE(mem.dl1().probe(0x3000));
    // Loading it back hits.
    const Tick t = mem.load(0x3000, 100);
    EXPECT_EQ(t, 100u + static_cast<Tick>(cfg.dl1_lat));
}

TEST(Hierarchy, StatsPropagate)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    mem.load(0x5000, 0);
    mem.fetchInstruction(0x6000, 0);
    EXPECT_EQ(mem.dl1().stats().accesses, 1u);
    EXPECT_EQ(mem.il1().stats().accesses, 1u);
    EXPECT_EQ(mem.l2().stats().accesses, 2u);
    EXPECT_EQ(mem.controller().stats().requests, 2u);
}

TEST(Hierarchy, ResetRestoresColdState)
{
    auto cfg = baseConfig();
    MemoryHierarchy mem(cfg);
    mem.load(0x5000, 0);
    mem.reset();
    EXPECT_EQ(mem.dl1().stats().accesses, 0u);
    EXPECT_FALSE(mem.dl1().probe(0x5000));
}

TEST(Hierarchy, L2LatencyParameterRespected)
{
    auto cfg = baseConfig();
    cfg.l2_lat = 19;
    MemoryHierarchy mem(cfg);
    mem.load(0x2000, 0);
    mem.load(0x2000 + 16 * 1024, 10);
    mem.load(0x2000 + 32 * 1024, 20);
    const Tick t = mem.load(0x2000, 1000);
    EXPECT_EQ(t, 1000u + static_cast<Tick>(cfg.dl1_lat + 19));
}

TEST(Hierarchy, Dl1LatencyParameterRespected)
{
    auto cfg = baseConfig();
    cfg.dl1_lat = 4;
    MemoryHierarchy mem(cfg);
    mem.load(0x2000, 0);
    EXPECT_EQ(mem.load(0x2000, 100), 104u);
}

} // namespace
