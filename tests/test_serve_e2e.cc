/**
 * @file
 * End-to-end service suite: the mcf pipeline (LHS sample -> batched
 * simulation -> RBF fit -> prediction) is bit-identical whether the
 * oracle is a local SimulatorOracle, a RemoteOracle against a 1-worker
 * SimServer, or a RemoteOracle against a 4-worker SimServer; an
 * unreachable server degrades transparently to local evaluation; a
 * server SIGKILLed mid-batch is retried and the batch still completes
 * with correct values; and a restarted server warm-starts from its
 * ResultArchive with zero new simulations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/adaptive.hh"
#include "core/oracle.hh"
#include "dspace/paper_space.hh"
#include "rbf/trainer.hh"
#include "sampling/sample_gen.hh"
#include "serve/oracle_factory.hh"
#include "serve/protocol.hh"
#include "serve/remote_oracle.hh"
#include "serve/result_archive.hh"
#include "serve/sim_server.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

extern char **environ;

namespace {

namespace fs = std::filesystem;
using namespace ppm;

constexpr std::size_t kTraceLen = 12000;
constexpr std::uint64_t kWarmup = 2000;
constexpr int kSampleSize = 20;

std::string
uniqueSocket(const std::string &tag)
{
    return "/tmp/ppm_e2e_" + std::to_string(::getpid()) + "_" + tag +
           ".sock";
}

sim::SimOptions
simOptions()
{
    sim::SimOptions opts;
    opts.warmup_instructions = kWarmup;
    return opts;
}

serve::ServerOptions
serverOptions(const std::string &sock, unsigned workers,
              std::string archive_dir = {})
{
    serve::ServerOptions opts;
    opts.socket_path = sock;
    opts.num_workers = workers;
    opts.archive_dir = std::move(archive_dir);
    return opts;
}

/** Shared mcf inputs: one trace, one LHS batch, for every test. */
struct Scenario
{
    dspace::DesignSpace space = dspace::paperTrainSpace();
    trace::Trace trace;
    std::vector<dspace::DesignPoint> batch;

    Scenario()
        : trace(trace::generateTrace(trace::profileByName("mcf"),
                                     kTraceLen))
    {
        math::Rng rng(42);
        batch = sampling::bestLatinHypercube(space, kSampleSize, 4,
                                             rng)
                    .points;
    }
};

Scenario &
scenario()
{
    static Scenario s;
    return s;
}

/** Everything downstream of the oracle that must be bit-identical. */
struct PipelineArtifacts
{
    std::vector<double> responses;
    std::vector<double> predictions;
};

PipelineArtifacts
runPipeline(core::CpiOracle &oracle)
{
    Scenario &s = scenario();
    PipelineArtifacts out;
    out.responses = oracle.evaluateAll(s.batch);

    rbf::TrainerOptions trainer;
    trainer.p_min_grid = {1, 2};
    trainer.alpha_grid = {4, 8};
    const auto unit = sampling::toUnitSample(s.space, s.batch);
    const auto trained =
        rbf::trainRbfModel(unit, out.responses, trainer);

    math::Rng probe(7);
    for (int i = 0; i < 16; ++i)
        out.predictions.push_back(trained.network.predict(
            s.space.toUnit(s.space.randomPoint(probe))));
    return out;
}

/** Local ground truth, simulated once and shared across tests. */
const PipelineArtifacts &
localReference()
{
    static const PipelineArtifacts ref = [] {
        Scenario &s = scenario();
        core::SimulatorOracle oracle(s.space, s.trace, simOptions());
        return runPipeline(oracle);
    }();
    return ref;
}

serve::RemoteOptions
fastRemote(std::vector<std::string> sockets)
{
    serve::RemoteOptions opts;
    opts.sockets = std::move(sockets);
    opts.connect_timeout_ms = 1000;
    opts.io_timeout_ms = 60'000;
    opts.max_attempts = 2;
    opts.backoff_initial_ms = 1;
    opts.backoff_max_ms = 10;
    opts.chunk_points = 4;
    opts.max_connections = 2;
    return opts;
}

TEST(ServeE2E, RemoteOneWorkerBitIdenticalToLocal)
{
    Scenario &s = scenario();
    const std::string sock = uniqueSocket("w1");
    serve::SimServer server(serverOptions(sock, 1));
    server.start();

    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi,
                               fastRemote({sock}));
    const PipelineArtifacts got = runPipeline(remote);
    EXPECT_EQ(got.responses, localReference().responses);
    EXPECT_EQ(got.predictions, localReference().predictions);

    // Every point was answered by the server, none locally.
    EXPECT_EQ(remote.remotePoints(), s.batch.size());
    EXPECT_EQ(remote.fallbackPoints(), 0u);
    EXPECT_EQ(server.totalEvaluations(), s.batch.size());
    server.stop();
}

TEST(ServeE2E, RemoteFourWorkersBitIdenticalToLocal)
{
    Scenario &s = scenario();
    const std::string sock = uniqueSocket("w4");
    serve::SimServer server(serverOptions(sock, 4));
    server.start();

    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi,
                               fastRemote({sock}));
    const PipelineArtifacts got = runPipeline(remote);
    EXPECT_EQ(got.responses, localReference().responses);
    EXPECT_EQ(got.predictions, localReference().predictions);
    EXPECT_EQ(remote.remotePoints(), s.batch.size());
    EXPECT_EQ(remote.fallbackPoints(), 0u);
    server.stop();
}

TEST(ServeE2E, UnreachableServerFallsBackTransparently)
{
    Scenario &s = scenario();
    serve::RemoteOptions opts =
        fastRemote({uniqueSocket("nobody-listens")});
    opts.connect_timeout_ms = 100;
    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi, opts);

    const PipelineArtifacts got = runPipeline(remote);
    EXPECT_EQ(got.responses, localReference().responses);
    EXPECT_EQ(got.predictions, localReference().predictions);
    EXPECT_EQ(remote.remotePoints(), 0u);
    EXPECT_EQ(remote.fallbackPoints(), s.batch.size());
    EXPECT_EQ(remote.evaluations(), s.batch.size());
}

TEST(ServeE2E, PingPongAgainstLiveServer)
{
    const std::string sock = uniqueSocket("ping");
    serve::SimServer server(serverOptions(sock, 1));
    server.start();

    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(), serve::encodePing(0xABCDEF), 1000);
    const serve::Frame reply = serve::readFrame(conn.get(), 1000);
    ASSERT_EQ(reply.type, serve::MsgType::Pong);
    EXPECT_EQ(serve::parsePong(reply.payload), 0xABCDEFu);
    server.stop();
}

TEST(ServeE2E, UnknownBenchmarkGetsErrorReply)
{
    const std::string sock = uniqueSocket("err");
    serve::SimServer server(serverOptions(sock, 1));
    server.start();

    serve::EvalRequest req;
    req.benchmark = "no-such-benchmark";
    req.trace_length = 1000;
    req.points = {scenario().batch.front()};
    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(), serve::encodeEvalRequest(req),
                      1000);
    const serve::Frame reply = serve::readFrame(conn.get(), 30'000);
    EXPECT_EQ(reply.type, serve::MsgType::Error);
    server.stop();
}

TEST(ServeE2E, ServerKilledMidBatchIsRetriedAndCompletes)
{
    Scenario &s = scenario();
    const std::string sock = uniqueSocket("kill");
    fs::remove(sock);

    // Spawn the real ppm_serve binary so there is a process to kill.
    const char *argv[] = {PPM_SERVE_BIN, "--socket", sock.c_str(),
                          "--workers", "2", nullptr};
    pid_t pid = -1;
    ASSERT_EQ(::posix_spawn(&pid, PPM_SERVE_BIN, nullptr, nullptr,
                            const_cast<char *const *>(argv), environ),
              0);

    // Wait until the server accepts and answers a Ping.
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
        try {
            serve::FdGuard conn = serve::connectUnix(sock, 100);
            serve::writeFrame(conn.get(), serve::encodePing(1), 500);
            up = serve::readFrame(conn.get(), 500).type ==
                 serve::MsgType::Pong;
        } catch (const std::exception &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }
    }
    ASSERT_TRUE(up) << "ppm_serve never came up on " << sock;

    serve::RemoteOptions opts = fastRemote({sock});
    opts.chunk_points = 2;     // many small chunks...
    opts.max_connections = 1;  // ...served strictly one at a time
    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi, opts);

    // Kill the server as soon as the first chunk has been served, so
    // the batch is genuinely mid-flight when the backend vanishes.
    std::atomic<bool> done{false};
    std::thread killer([&] {
        while (!done.load() && remote.remoteChunksServed() == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ::kill(pid, SIGKILL);
    });

    const auto responses = remote.evaluateAll(s.batch);
    done.store(true);
    killer.join();
    int status = 0;
    ::waitpid(pid, &status, 0);
    fs::remove(sock);

    // The batch completed with values identical to local simulation:
    // failed chunks were retried and then served by the fallback.
    EXPECT_EQ(responses, localReference().responses);
    EXPECT_GE(remote.remoteChunksServed(), 1u);
    EXPECT_EQ(remote.remotePoints() + remote.fallbackPoints(),
              s.batch.size());
}

TEST(ServeE2E, RestartedServerWarmStartsFromArchive)
{
    Scenario &s = scenario();
    const fs::path dir =
        fs::temp_directory_path() /
        ("ppm_e2e_archive_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    const std::string sock = uniqueSocket("warm");

    serve::RemoteOptions opts = fastRemote({sock});
    opts.chunk_points = s.batch.size(); // whole batch in one request

    std::vector<double> first;
    {
        serve::SimServer server(
            serverOptions(sock, 2, dir.string()));
        server.start();
        serve::RemoteOracle remote(s.space, "mcf", s.trace,
                                   simOptions(), core::Metric::Cpi,
                                   opts);
        first = remote.evaluateAll(s.batch);
        EXPECT_EQ(server.totalEvaluations(), s.batch.size());
        EXPECT_EQ(remote.evaluations(), s.batch.size());
        server.stop();
    }

    // Same socket, same archive directory, fresh process state: the
    // second server must answer the whole batch from the archive.
    {
        serve::SimServer server(
            serverOptions(sock, 2, dir.string()));
        server.start();
        serve::RemoteOracle remote(s.space, "mcf", s.trace,
                                   simOptions(), core::Metric::Cpi,
                                   opts);
        const auto second = remote.evaluateAll(s.batch);
        EXPECT_EQ(second, first);
        EXPECT_EQ(server.totalEvaluations(), 0u)
            << "restarted server re-simulated archived results";
        EXPECT_EQ(remote.evaluations(), 0u);
        server.stop();
    }
    fs::remove_all(dir);
}

TEST(ServeE2E, AdaptiveBatchesBitIdenticalAcrossShardCounts)
{
    // The determinantal infill loop dispatches each batch through one
    // evaluateAll() call; the trajectory — seed sample, every picked
    // batch, every refit error — must be bit-identical whether that
    // call is served locally (0 shards) or sharded across two server
    // processes.
    Scenario &s = scenario();
    core::AdaptiveOptions opts;
    opts.initial_size = 10;
    opts.batch_size = 4;
    opts.max_samples = 18;
    opts.target_mean_error = 0.0;
    opts.candidate_pool = 60;
    opts.num_test_points = 5;
    opts.lhs_candidates = 3;
    opts.trainer.p_min_grid = {2};
    opts.trainer.alpha_grid = {4};

    auto runWith = [&](core::CpiOracle &oracle) {
        core::AdaptiveSampler sampler(s.space, s.space, oracle);
        return sampler.build(opts);
    };

    core::SimulatorOracle local(s.space, s.trace, simOptions());
    const auto reference = runWith(local);
    ASSERT_GE(reference.history.size(), 3u);

    const std::string sock_a = uniqueSocket("adapt0");
    const std::string sock_b = uniqueSocket("adapt1");
    serve::SimServer server_a(serverOptions(sock_a, 1));
    serve::SimServer server_b(serverOptions(sock_b, 1));
    server_a.start();
    server_b.start();
    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi,
                               fastRemote({sock_a, sock_b}));
    const auto sharded = runWith(remote);
    server_a.stop();
    server_b.stop();

    EXPECT_EQ(sharded.sample, reference.sample);
    ASSERT_EQ(sharded.history.size(), reference.history.size());
    for (std::size_t i = 0; i < sharded.history.size(); ++i)
        EXPECT_EQ(sharded.history[i].error.mean_error,
                  reference.history[i].error.mean_error);
    EXPECT_GT(remote.remotePoints(), 0u);
}

TEST(ServeE2E, StatsFramePollsLiveServer)
{
    Scenario &s = scenario();
    const std::string sock = uniqueSocket("stats");
    serve::SimServer server(serverOptions(sock, 2));
    server.start();

    // Drive one real batch so the registry has something to report.
    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi, fastRemote({sock}));
    (void)remote.evaluateAll(s.batch);

    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(), serve::encodeStatsRequest(99),
                      1000);
    const serve::Frame reply = serve::readFrame(conn.get(), 5000);
    ASSERT_EQ(reply.type, serve::MsgType::StatsResponse);
    const obs::Snapshot snap =
        serve::parseStatsResponse(reply.payload);

#ifndef PPM_OBS_DISABLED
    auto counter = [&](const std::string &name) -> std::uint64_t {
        for (const auto &c : snap.counters)
            if (c.name == name)
                return c.value;
        return 0;
    };
    // The in-process server shares this test binary's registry, which
    // accumulates across tests — so lower bounds, not equalities.
    EXPECT_GE(counter("serve.requests"), 1u);
    EXPECT_GE(counter("serve.points"), s.batch.size());
    EXPECT_GE(counter("oracle.simulations"), 1u);
    bool request_span_seen = false;
    for (const auto &h : snap.histograms)
        if (h.name == "span.serve.request" && h.count > 0)
            request_span_seen = true;
    EXPECT_TRUE(request_span_seen);
#endif
    server.stop();
}

TEST(ServeE2E, PpmStatsCliPollsSpawnedServer)
{
    Scenario &s = scenario();
    const std::string sock = uniqueSocket("statscli");
    fs::remove(sock);

    const char *argv[] = {PPM_SERVE_BIN, "--socket", sock.c_str(),
                          "--workers", "1", nullptr};
    pid_t pid = -1;
    ASSERT_EQ(::posix_spawn(&pid, PPM_SERVE_BIN, nullptr, nullptr,
                            const_cast<char *const *>(argv), environ),
              0);
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
        try {
            serve::FdGuard conn = serve::connectUnix(sock, 100);
            serve::writeFrame(conn.get(), serve::encodePing(1), 500);
            up = serve::readFrame(conn.get(), 500).type ==
                 serve::MsgType::Pong;
        } catch (const std::exception &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }
    }
    ASSERT_TRUE(up) << "ppm_serve never came up on " << sock;

    // One real batch, then poll the server's registry via the CLI.
    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi, fastRemote({sock}));
    (void)remote.evaluateAll(s.batch);

    const std::string cmd = std::string(PPM_STATS_BIN) +
                            " --no-local --json --socket " + sock +
                            " 2>/dev/null";
    FILE *pipe = ::popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string output;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        output.append(buf, got);
    const int status = ::pclose(pipe);

    ::kill(pid, SIGTERM);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    fs::remove(sock);

    EXPECT_EQ(status, 0) << output;
    ASSERT_FALSE(output.empty());
    EXPECT_EQ(output.front(), '{') << output;
#ifndef PPM_OBS_DISABLED
    EXPECT_NE(output.find("\"serve.requests\""), std::string::npos)
        << output;
    EXPECT_NE(output.find("\"oracle.simulations\""),
              std::string::npos)
        << output;
    EXPECT_NE(output.find("span.serve.request"), std::string::npos)
        << output;
#endif
}

// --- TCP transport ----------------------------------------------------

TEST(Transport, EndpointGrammar)
{
    using serve::Endpoint;
    const Endpoint unix_ep = serve::parseEndpoint("/tmp/x.sock");
    EXPECT_EQ(unix_ep.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
    EXPECT_EQ(unix_ep.display(), "/tmp/x.sock");

    const Endpoint tcp = serve::parseEndpoint("127.0.0.1:7070");
    EXPECT_EQ(tcp.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(tcp.host, "127.0.0.1");
    EXPECT_EQ(tcp.port, 7070);
    EXPECT_EQ(tcp.display(), "127.0.0.1:7070");

    const Endpoint named = serve::parseEndpoint("sim-host:0");
    EXPECT_EQ(named.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(named.host, "sim-host");
    EXPECT_EQ(named.port, 0);

    // A path containing a colon-digit suffix is still a path: the
    // '/' wins, so pre-TCP socket configs parse exactly as before.
    const Endpoint path = serve::parseEndpoint("/tmp/srv:8080");
    EXPECT_EQ(path.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(path.path, "/tmp/srv:8080");

    // A name with no port is a (relative) Unix path, not TCP.
    EXPECT_EQ(serve::parseEndpoint("localhost").kind,
              Endpoint::Kind::Unix);

    EXPECT_THROW(serve::parseEndpoint(""), serve::IoError);
    EXPECT_THROW(serve::parseEndpoint(":7070"), serve::IoError);
    EXPECT_THROW(serve::parseEndpoint("host:65536"), serve::IoError);

    const auto list =
        serve::parseEndpointList("/tmp/a.sock,10.0.0.1:7070");
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0].kind, Endpoint::Kind::Unix);
    EXPECT_EQ(list[1].kind, Endpoint::Kind::Tcp);
}

TEST(ServeE2E, TcpShardBitIdenticalToLocal)
{
    // Port 0: the kernel picks a free port, endpointSpec() reads it
    // back, so the test never races another process for a port.
    Scenario &s = scenario();
    serve::SimServer server(serverOptions("127.0.0.1:0", 2));
    server.start();
    const std::string endpoint = server.endpointSpec();
    ASSERT_NE(endpoint, "127.0.0.1:0") << "port 0 was not resolved";

    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi,
                               fastRemote({endpoint}));
    const PipelineArtifacts got = runPipeline(remote);
    EXPECT_EQ(got.responses, localReference().responses);
    EXPECT_EQ(got.predictions, localReference().predictions);
    EXPECT_EQ(remote.remotePoints(), s.batch.size());
    EXPECT_EQ(remote.fallbackPoints(), 0u);
    server.stop();
}

TEST(ServeE2E, MixedUnixAndTcpShardsBitIdenticalToLocal)
{
    // One Unix shard plus one TCP shard behind a single oracle:
    // chunks alternate between transports and the merged batch is
    // still bit-identical to local simulation.
    Scenario &s = scenario();
    const std::string unix_sock = uniqueSocket("mixed");
    serve::SimServer unix_server(serverOptions(unix_sock, 1));
    serve::SimServer tcp_server(serverOptions("127.0.0.1:0", 1));
    unix_server.start();
    tcp_server.start();

    serve::RemoteOracle remote(
        s.space, "mcf", s.trace, simOptions(), core::Metric::Cpi,
        fastRemote({unix_sock, tcp_server.endpointSpec()}));
    const PipelineArtifacts got = runPipeline(remote);
    EXPECT_EQ(got.responses, localReference().responses);
    EXPECT_EQ(got.predictions, localReference().predictions);
    EXPECT_EQ(remote.remotePoints(), s.batch.size());
    EXPECT_EQ(remote.fallbackPoints(), 0u);
    // Both transports actually served work.
    EXPECT_GT(unix_server.totalEvaluations(), 0u);
    EXPECT_GT(tcp_server.totalEvaluations(), 0u);
    unix_server.stop();
    tcp_server.stop();
}

TEST(ServeE2E, PpmStatsCliPollsTcpEndpoint)
{
    // The stats CLI speaks the same endpoint grammar: poll an
    // in-process server over TCP loopback, then take a --watch rate
    // reading against it.
    Scenario &s = scenario();
    serve::SimServer server(serverOptions("127.0.0.1:0", 2));
    server.start();
    const std::string endpoint = server.endpointSpec();

    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi,
                               fastRemote({endpoint}));
    (void)remote.evaluateAll(s.batch);

    auto runCli = [](const std::string &args) {
        const std::string cmd = std::string(PPM_STATS_BIN) + " " +
                                args + " 2>/dev/null";
        FILE *pipe = ::popen(cmd.c_str(), "r");
        EXPECT_NE(pipe, nullptr);
        std::string output;
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
            output.append(buf, got);
        EXPECT_EQ(::pclose(pipe), 0) << output;
        return output;
    };

    const std::string polled =
        runCli("--no-local --json --socket " + endpoint);
    ASSERT_FALSE(polled.empty());
    EXPECT_EQ(polled.front(), '{') << polled;
#ifndef PPM_OBS_DISABLED
    EXPECT_NE(polled.find("\"serve.requests\""), std::string::npos)
        << polled;
#endif

    const std::string watched = runCli(
        "--no-local --json --watch 0.2 --socket " + endpoint);
    ASSERT_FALSE(watched.empty());
    EXPECT_NE(watched.find("\"interval_s\""), std::string::npos)
        << watched;
    EXPECT_NE(watched.find("\"counter_rates\""), std::string::npos)
        << watched;
    server.stop();
}

TEST(ServeE2E, FactoryHonoursExplicitOptions)
{
    Scenario &s = scenario();
    const std::string sock = uniqueSocket("factory");
    serve::SimServer server(serverOptions(sock, 2));
    server.start();

    serve::FactoryOptions fopts;
    fopts.sockets = {sock};
    fopts.remote = fastRemote({});
    auto remote = serve::makeOracle(s.space, "mcf", s.trace,
                                    simOptions(), core::Metric::Cpi,
                                    fopts);
    EXPECT_EQ(remote->evaluateAll(s.batch),
              localReference().responses);
    server.stop();

    serve::FactoryOptions local_opts;
    auto local = serve::makeOracle(s.space, "mcf", s.trace,
                                   simOptions(), core::Metric::Cpi,
                                   local_opts);
    EXPECT_EQ(local->evaluateAll(s.batch),
              localReference().responses);
}

} // namespace
