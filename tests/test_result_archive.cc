/**
 * @file
 * ResultArchive suite: persistence round-trips, crash recovery
 * (corrupted or truncated trailing records are detected by CRC,
 * skipped, and truncated away while every earlier record loads), the
 * context guard against mixing result sets, and the oracle warm-start
 * path — a second oracle on the same archive re-serves a batch with
 * zero new simulator invocations and bit-identical values.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/oracle.hh"
#include "dspace/paper_space.hh"
#include "sampling/sample_gen.hh"
#include "serve/result_archive.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace {

namespace fs = std::filesystem;
using namespace ppm;
using serve::ArchiveError;
using serve::ResultArchive;
using Key = core::ResultStore::Key;

/** Fresh per-test scratch directory, removed on teardown. */
class ResultArchiveTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("ppm_archive_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string
    archivePath(const std::string &name = "test.ppma") const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

std::vector<std::pair<Key, double>>
drain(ResultArchive &archive)
{
    std::vector<std::pair<Key, double>> out;
    archive.load([&](const Key &k, double v) {
        out.emplace_back(k, v);
    });
    return out;
}

void
flipByteAt(const std::string &path, std::uintmax_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
}

TEST_F(ResultArchiveTest, RoundTripAcrossInstances)
{
    const Key k1{1000000, -2500000, 64000000};
    const Key k2{7, 0, -1};
    {
        ResultArchive archive(archivePath(), "ctx");
        EXPECT_EQ(archive.recordsLoaded(), 0u);
        archive.append(k1, 1.25);
        archive.append(k2, -3.5e-9);
    }
    ResultArchive reopened(archivePath(), "ctx");
    EXPECT_EQ(reopened.recordsLoaded(), 2u);
    EXPECT_EQ(reopened.recordsSkipped(), 0u);
    const auto entries = drain(reopened);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].first, k1);
    EXPECT_EQ(entries[0].second, 1.25);
    EXPECT_EQ(entries[1].first, k2);
    EXPECT_EQ(entries[1].second, -3.5e-9);
}

TEST_F(ResultArchiveTest, AppendsAccumulateAcrossGenerations)
{
    {
        ResultArchive a(archivePath(), "ctx");
        a.append({1}, 1.0);
    }
    {
        ResultArchive b(archivePath(), "ctx");
        EXPECT_EQ(b.recordsLoaded(), 1u);
        b.append({2}, 2.0);
    }
    ResultArchive c(archivePath(), "ctx");
    EXPECT_EQ(c.recordsLoaded(), 2u);
}

TEST_F(ResultArchiveTest, CorruptTrailingRecordIsSkippedAndTruncated)
{
    std::uintmax_t clean_two = 0;
    {
        ResultArchive archive(archivePath(), "ctx");
        archive.append({10, 20}, 0.5);
        archive.append({30, 40}, 1.5);
        clean_two = fs::file_size(archivePath());
        archive.append({50, 60}, 2.5);
    }
    // Flip one byte inside the last record's payload: its CRC no
    // longer matches, so recovery must drop exactly that record.
    flipByteAt(archivePath(), fs::file_size(archivePath()) - 6);

    {
        ResultArchive recovered(archivePath(), "ctx");
        EXPECT_EQ(recovered.recordsLoaded(), 2u);
        EXPECT_EQ(recovered.recordsSkipped(), 1u);
        const auto entries = drain(recovered);
        ASSERT_EQ(entries.size(), 2u);
        EXPECT_EQ(entries[0].first, (Key{10, 20}));
        EXPECT_EQ(entries[1].first, (Key{30, 40}));
        // The corrupt tail is gone from disk, not just ignored.
        EXPECT_EQ(fs::file_size(archivePath()), clean_two);
        // The log is writable again after recovery.
        recovered.append({70, 80}, 3.5);
    }
    ResultArchive clean(archivePath(), "ctx");
    EXPECT_EQ(clean.recordsLoaded(), 3u);
    EXPECT_EQ(clean.recordsSkipped(), 0u);
}

TEST_F(ResultArchiveTest, TruncatedTrailingRecordIsRecovered)
{
    {
        ResultArchive archive(archivePath(), "ctx");
        archive.append({1, 2, 3}, 4.0);
        archive.append({5, 6, 7}, 8.0);
    }
    // Simulate a crash mid-append: chop bytes off the final record.
    fs::resize_file(archivePath(), fs::file_size(archivePath()) - 5);

    ResultArchive recovered(archivePath(), "ctx");
    EXPECT_EQ(recovered.recordsLoaded(), 1u);
    EXPECT_EQ(recovered.recordsSkipped(), 1u);
    const auto entries = drain(recovered);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].first, (Key{1, 2, 3}));
    EXPECT_EQ(entries[0].second, 4.0);
}

TEST_F(ResultArchiveTest, ContextMismatchIsRejected)
{
    {
        ResultArchive archive(archivePath(), "mcf|t100|w10|CPI");
        archive.append({1}, 1.0);
    }
    EXPECT_THROW(ResultArchive(archivePath(), "gcc|t100|w10|CPI"),
                 ArchiveError);
    // The original context still opens fine.
    ResultArchive ok(archivePath(), "mcf|t100|w10|CPI");
    EXPECT_EQ(ok.recordsLoaded(), 1u);
}

TEST_F(ResultArchiveTest, NonArchiveFileIsRejected)
{
    const std::string path = archivePath("junk.ppma");
    std::ofstream(path) << "definitely not an archive";
    EXPECT_THROW(ResultArchive(path, "ctx"), ArchiveError);
}

TEST_F(ResultArchiveTest, FileNameForIsContextUnique)
{
    EXPECT_EQ(ResultArchive::fileNameFor("mcf", 100000, 15000,
                                         core::Metric::Cpi),
              "mcf_t100000_w15000_CPI.ppma");
    // Separator characters in benchmark names cannot forge paths.
    EXPECT_EQ(ResultArchive::fileNameFor("a/b|c", 1, 2,
                                         core::Metric::EnergyPerInst),
              "a_b_c_t1_w2_EPI.ppma");
}

TEST_F(ResultArchiveTest, OracleWarmStartSkipsAllSimulations)
{
    auto space = dspace::paperTrainSpace();
    const auto tr = trace::generateTrace(
        trace::profileByName("mcf"), 12000);
    sim::SimOptions sim_opts;
    sim_opts.warmup_instructions = 2000;

    math::Rng rng(42);
    const auto batch =
        sampling::bestLatinHypercube(space, 6, 2, rng).points;

    std::vector<double> first;
    {
        core::SimulatorOracle oracle(space, tr, sim_opts);
        oracle.attachStore(std::make_shared<ResultArchive>(
            archivePath(), "warm"));
        EXPECT_EQ(oracle.archivedResults(), 0u);
        first = oracle.evaluateAll(batch);
        EXPECT_EQ(oracle.evaluations(), batch.size());
    }

    // A brand-new oracle over the same archive serves the whole batch
    // from disk: zero simulator invocations, bit-identical values.
    core::SimulatorOracle warm(space, tr, sim_opts);
    warm.attachStore(
        std::make_shared<ResultArchive>(archivePath(), "warm"));
    EXPECT_EQ(warm.archivedResults(), batch.size());
    const auto second = warm.evaluateAll(batch);
    EXPECT_EQ(warm.evaluations(), 0u);
    EXPECT_EQ(second, first);

    // A genuinely new point still simulates — the archive is a cache,
    // not a gag.
    math::Rng probe(7);
    warm.cpi(space.randomPoint(probe));
    EXPECT_EQ(warm.evaluations(), 1u);
}

} // namespace
