/**
 * @file
 * ResultCache contention-correctness suite: SIGKILL-then-restart
 * spill recovery (dirty entries evicted to a ResultArchive reload
 * with zero re-computation), N-threads-one-point dedup (exactly one
 * computation), eviction under concurrent lock-free lookups, budget
 * enforcement under parallel load, bit-equivalence of cached oracles
 * against the mutex-map baseline across thread and shard counts, and
 * live cache.* counter exposure through the server's STATS frame.
 *
 * The SIGKILL suite forks, so it is registered first — before any
 * test spins up pool threads in this binary.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "cache/baseline.hh"
#include "cache/result_cache.hh"
#include "core/oracle.hh"
#include "dspace/paper_space.hh"
#include "math/rng.hh"
#include "sampling/sample_gen.hh"
#include "serve/protocol.hh"
#include "serve/remote_oracle.hh"
#include "serve/result_archive.hh"
#include "serve/sim_server.hh"
#include "serve/socket_io.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"
#include "util/thread_pool.hh"

namespace {

namespace fs = std::filesystem;
using namespace ppm;
using cache::CacheConfig;
using cache::MutexMapCache;
using cache::Outcome;
using cache::ResultCache;
using Key = core::ResultStore::Key;

/** Deterministic stand-in for a simulation. */
double
syntheticCpi(const dspace::DesignPoint &point)
{
    double v = 0.75;
    for (std::size_t i = 0; i < point.size(); ++i)
        v += point[i] * static_cast<double>(i + 1) * 0.125;
    return v;
}

std::vector<dspace::DesignPoint>
syntheticPoints(std::size_t n)
{
    std::vector<dspace::DesignPoint> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        points.push_back(
            {static_cast<double>(i), static_cast<double>(i % 7)});
    return points;
}

std::string
scratchDir(const std::string &tag)
{
    const auto dir = fs::temp_directory_path() /
                     ("ppm_cachecc_" + std::to_string(::getpid()) +
                      "_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/**
 * A write-behind FunctionOracle is SIGKILLed with dirty results in
 * its table: only what budget pressure already spilled to the archive
 * survives. A restarted oracle on the same archive must serve every
 * spilled point with zero re-computation and re-compute exactly the
 * rest — and the reloaded values are bit-identical.
 */
TEST(CacheSpillRestart, SigkillThenRestartReloadsSpilledEntries)
{
    const std::string dir = scratchDir("sigkill");
    const std::string archive_file = dir + "/fn.ppma";
    const auto points = syntheticPoints(60);

    int ready_pipe[2];
    ASSERT_EQ(::pipe(ready_pipe), 0);
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        // Child: tiny one-group table (24 slots) so most of the 60
        // dirty results are evicted — and therefore spilled — before
        // the kill. No flushDirty(): whatever is still only in the
        // table dies with the process.
        ::close(ready_pipe[0]);
        CacheConfig config;
        config.key_words = 3;
        config.budget_bytes = 1;
        config.shards = 1;
        auto cache = std::make_shared<ResultCache>(config);
        auto store = std::make_shared<serve::ResultArchive>(
            archive_file, "synthetic");
        core::FunctionOracle oracle(syntheticCpi);
        oracle.attachCache(cache, store);
        for (const auto &p : points)
            (void)oracle.cpi(p);
        const char byte = 1;
        (void)!::write(ready_pipe[1], &byte, 1);
        for (;;)
            ::pause(); // await the SIGKILL
    }
    ::close(ready_pipe[1]);
    char byte = 0;
    ASSERT_EQ(::read(ready_pipe[0], &byte, 1), 1);
    ::close(ready_pipe[0]);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Restart: a comfortable table, same archive. The spilled subset
    // preloads; only the never-spilled remainder computes.
    CacheConfig config;
    config.key_words = 3;
    config.budget_bytes = 1 << 20;
    auto cache = std::make_shared<ResultCache>(config);
    auto store = std::make_shared<serve::ResultArchive>(
        archive_file, "synthetic");
    core::FunctionOracle oracle(syntheticCpi);
    oracle.attachCache(cache, store);

    const std::uint64_t preloaded = oracle.archivedResults();
    EXPECT_GT(preloaded, 0u) << "evictions must have spilled";
    EXPECT_LT(preloaded, points.size())
        << "entries never evicted must have died with the child";

    const std::vector<double> values = oracle.cpiAll(points);
    EXPECT_EQ(oracle.evaluations(), points.size() - preloaded)
        << "every spilled entry must reload without re-computation";
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(values[i], syntheticCpi(points[i])) << "point " << i;

    fs::remove_all(dir);
}

TEST(CacheContention, NThreadsOnePointComputeExactlyOnce)
{
    CacheConfig config;
    config.key_words = 2;
    config.budget_bytes = 1 << 16;
    ResultCache cache(config);

    constexpr int kThreads = 8;
    std::atomic<int> computes{0};
    std::atomic<bool> go{false};
    std::atomic<int> computed_outcomes{0};
    std::vector<double> values(kThreads, 0.0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            const auto result = cache.getOrCompute(
                {5, 5},
                [&] {
                    computes.fetch_add(1,
                                       std::memory_order_relaxed);
                    // Hold the claim long enough that the other
                    // threads pile up on the pending slot.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(200));
                    return 6.5;
                },
                false);
            values[t] = result.value;
            if (result.outcome == Outcome::Computed)
                computed_outcomes.fetch_add(
                    1, std::memory_order_relaxed);
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(computes.load(), 1) << "dedup must collapse the race";
    EXPECT_EQ(computed_outcomes.load(), 1);
    for (double v : values)
        EXPECT_EQ(v, 6.5);
    EXPECT_GE(cache.stats().dedup_waits, 1u);
}

TEST(CacheContention, FunctionOracleDedupsRacingThreads)
{
    CacheConfig config;
    config.key_words = 3;
    config.budget_bytes = 1 << 16;
    core::FunctionOracle oracle([](const dspace::DesignPoint &p) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return syntheticCpi(p);
    });
    oracle.attachCache(std::make_shared<ResultCache>(config));

    const dspace::DesignPoint point = {3.0, 4.0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            EXPECT_EQ(oracle.cpi(point), syntheticCpi(point));
        });
    go.store(true, std::memory_order_release);
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(oracle.evaluations(), 1u)
        << "N racing threads, one evaluation";
}

TEST(CacheContention, EvictionUnderConcurrentLookupStaysConsistent)
{
    // A handful of groups, hammered: the writer forces constant
    // eviction while readers run the lock-free probe. Any hit must
    // carry the exact value of its key — a torn or recycled slot
    // would fail the equality.
    CacheConfig config;
    config.key_words = 2;
    config.budget_bytes = 16 * 1024;
    config.shards = 1;
    ResultCache cache(config);
    const auto valueOf = [](std::int64_t i) { return i * 1.25 + 0.5; };

    constexpr std::int64_t kKeys = 20'000;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> hits{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&, t] {
            std::uint64_t state = 0x9E3779B9u + t;
            while (!done.load(std::memory_order_acquire)) {
                state = state * 6364136223846793005ULL + 1442695040888963407ULL;
                const std::int64_t i =
                    static_cast<std::int64_t>((state >> 33) % kKeys);
                double value = 0.0;
                if (cache.lookup({2, i}, &value)) {
                    if (value != valueOf(i)) {
                        ADD_FAILURE() << "inconsistent hit for " << i
                                      << ": " << value;
                        done.store(true,
                                   std::memory_order_release);
                    }
                    hits.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::int64_t i = 0; i < kKeys; ++i) {
        cache.insert({2, i}, valueOf(i), false);
        // Give the single-core CI box a chance to interleave the
        // readers with live evictions.
        if ((i & 0x3FF) == 0)
            std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
    for (auto &reader : readers)
        reader.join();

    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_LE(cache.liveEntries(), cache.capacitySlots());
    // Deterministic sweep: the survivors must all read back exact
    // (racing reader hits are scheduling-dependent, survivors never).
    std::uint64_t survivors = 0;
    for (std::int64_t i = 0; i < kKeys; ++i) {
        double value = 0.0;
        if (!cache.lookup({2, i}, &value))
            continue;
        ++survivors;
        ASSERT_EQ(value, valueOf(i)) << "key " << i;
    }
    EXPECT_GT(survivors, 0u);
    EXPECT_LE(survivors, cache.capacitySlots());
}

TEST(CacheContention, BudgetRespectedUnderParallelLoad)
{
    CacheConfig config;
    config.key_words = 2;
    config.budget_bytes = 32 * 1024;
    config.shards = 4;
    ResultCache cache(config);
    EXPECT_LE(cache.footprintBytes(), config.budget_bytes);

    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (std::int64_t i = 0; i < 10'000; ++i) {
                const std::int64_t k = t * 100'000 + i;
                (void)cache.getOrCompute(
                    {k, k * 3},
                    [&] { return k * 0.5; }, false);
            }
        });
    for (auto &thread : threads)
        thread.join();

    EXPECT_LE(cache.liveEntries(), cache.capacitySlots());
    EXPECT_GT(cache.stats().evictions, 0u);
    // The table never grows: its footprint was fixed at construction.
    EXPECT_LE(cache.footprintBytes(), config.budget_bytes);
}

/**
 * Bit-equivalence sweep: a cached FunctionOracle must return exactly
 * the values of the mutex-map baseline protocol for every thread
 * count x shard count, including repeated points (memo hits).
 */
TEST(CacheEquivalence, FunctionOracleMatchesMutexMapBaseline)
{
    auto points = syntheticPoints(64);
    // Duplicates exercise the memo path under contention.
    const auto dups = syntheticPoints(32);
    points.insert(points.end(), dups.begin(), dups.end());

    // Baseline: the old design, run through the same parallel map.
    MutexMapCache baseline;
    util::setGlobalThreads(4);
    const std::vector<double> expected = util::parallelMap(
        points, [&](const dspace::DesignPoint &p) {
            Key key = {0};
            for (double v : p)
                key.push_back(static_cast<std::int64_t>(
                    std::llround(v * 1e6)));
            return baseline.getOrCompute(
                key, [&] { return syntheticCpi(p); });
        });

    for (const unsigned threads : {1u, 4u, 8u}) {
        for (const unsigned shards : {0u, 1u, 4u}) {
            CacheConfig config;
            config.key_words = 3;
            config.budget_bytes = 1 << 20;
            config.shards = shards;
            core::FunctionOracle oracle(syntheticCpi);
            oracle.attachCache(
                std::make_shared<ResultCache>(config));
            util::setGlobalThreads(threads);
            const std::vector<double> got = util::parallelMap(
                points, [&](const dspace::DesignPoint &p) {
                    return oracle.cpi(p);
                });
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                ASSERT_EQ(got[i], expected[i])
                    << "threads=" << threads << " shards=" << shards
                    << " point=" << i;
            EXPECT_LE(oracle.evaluations(), 64u)
                << "duplicates must be memoized";
        }
    }
    util::setGlobalThreads(0);
}

/**
 * The real thing: SimulatorOracle CPI values through the concurrent
 * cache are bit-identical to a mutex-map-memoized direct-simulation
 * baseline at 1/4/8 threads and auto/1/4 shards.
 */
TEST(CacheEquivalence, SimulatorOracleMatchesBaselineAcrossThreadsAndShards)
{
    const auto space = dspace::paperTrainSpace();
    const trace::Trace trace = trace::generateTrace(
        trace::profileByName("mcf"), 4000);
    sim::SimOptions options;
    options.warmup_instructions = 500;

    math::Rng rng(17);
    auto batch =
        sampling::bestLatinHypercube(space, 8, 2, rng).points;
    // A duplicate point exercises dedup inside one batch.
    batch.push_back(batch.front());

    // Baseline: sequential direct simulation through MutexMapCache.
    MutexMapCache baseline;
    std::vector<double> expected;
    for (const auto &p : batch) {
        const Key key = core::SimulatorOracle::cacheKey(p);
        expected.push_back(baseline.getOrCompute(key, [&] {
            const auto config =
                sim::ProcessorConfig::fromDesignPoint(space, p);
            return sim::simulate(trace, config, options).cpi();
        }));
    }

    for (const unsigned threads : {1u, 4u, 8u}) {
        for (const unsigned shards : {0u, 1u, 4u}) {
            core::SimulatorOracle oracle(space, trace, options);
            if (shards != 0) {
                CacheConfig config;
                config.key_words = space.size() + 1;
                config.budget_bytes = 1 << 20;
                config.shards = shards;
                oracle.attachSharedCache(
                    std::make_shared<ResultCache>(config), 0);
            }
            util::setGlobalThreads(threads);
            const std::vector<double> got =
                oracle.evaluateAll(batch);
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                ASSERT_EQ(got[i], expected[i])
                    << "threads=" << threads << " shards=" << shards
                    << " point=" << i;
            EXPECT_EQ(oracle.evaluations(), batch.size() - 1)
                << "the duplicate point must not re-simulate";
        }
    }
    util::setGlobalThreads(0);
}

/** cache.* counters flow through the server's STATS frame live. */
TEST(CacheServeStats, StatsFrameCarriesCacheCounters)
{
    const auto space = dspace::paperTrainSpace();
    const trace::Trace trace = trace::generateTrace(
        trace::profileByName("mcf"), 6000);
    sim::SimOptions options;
    options.warmup_instructions = 1000;
    math::Rng rng(23);
    const auto batch =
        sampling::bestLatinHypercube(space, 6, 2, rng).points;

    const std::string sock = "/tmp/ppm_cachecc_" +
                             std::to_string(::getpid()) +
                             "_stats.sock";
    serve::ServerOptions server_options;
    server_options.socket_path = sock;
    server_options.num_workers = 2;
    serve::SimServer server(server_options);
    server.start();

    serve::RemoteOptions remote_options;
    remote_options.sockets = {sock};
    remote_options.max_attempts = 2;
    remote_options.backoff_initial_ms = 1;
    serve::RemoteOracle remote(space, "mcf", trace, options,
                               core::Metric::Cpi, remote_options);
    // Twice: the second pass answers out of the server's table.
    (void)remote.evaluateAll(batch);
    (void)remote.evaluateAll(batch);

    serve::FdGuard conn = serve::connectUnix(sock, 1000);
    serve::writeFrame(conn.get(), serve::encodeStatsRequest(7), 1000);
    const serve::Frame reply = serve::readFrame(conn.get(), 5000);
    server.stop();
    ASSERT_EQ(reply.type, serve::MsgType::StatsResponse);
    const obs::Snapshot snap =
        serve::parseStatsResponse(reply.payload);

#ifndef PPM_OBS_DISABLED
    const auto counter =
        [&](const std::string &name) -> std::uint64_t {
        for (const auto &c : snap.counters)
            if (c.name == name)
                return c.value;
        return 0;
    };
    // This binary shares one registry across tests: lower bounds.
    EXPECT_GE(counter("cache.miss"), batch.size());
    EXPECT_GE(counter("cache.hit"), batch.size());
    bool lookup_span_seen = false;
    for (const auto &h : snap.histograms)
        if (h.name == "span.cache.lookup" && h.count > 0)
            lookup_span_seen = true;
    EXPECT_TRUE(lookup_span_seen);
#endif

    const auto stats = server.resultCache().stats();
    EXPECT_GE(stats.misses, batch.size());
    EXPECT_GE(stats.hits, batch.size());
}

} // namespace
