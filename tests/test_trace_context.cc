/**
 * @file
 * Distributed trace-context unit suite: deterministic 1-in-N root
 * sampling, span parenting through nested ScopedSpans and the thread
 * pool, SpanBuffer overflow accounting, the v4 frame trace block
 * (round trip + propagation into encoded frames), and wire-version
 * skew — a v3 poller against a v4 server must get v3 frames back and
 * STATS snapshots from mixed-version servers must merge cleanly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/trace_context.hh"
#include "obs/trace_span.hh"
#include "serve/protocol.hh"
#include "util/thread_pool.hh"

namespace {

using namespace ppm;

/** RAII: enable tracing for one test, restore "off" after. */
struct TracingOn
{
    explicit TracingOn(std::uint32_t every)
    {
        obs::SpanBuffer::instance().clear();
        obs::setTraceSampleEvery(every);
    }
    ~TracingOn()
    {
        obs::setTraceSampleEvery(0);
        obs::SpanBuffer::instance().clear();
        obs::threadTraceContext() = obs::TraceContext{};
    }
};

TEST(TraceContext, DisabledRootInstallsNothing)
{
    obs::setTraceSampleEvery(0);
    obs::TraceRoot root("test.root");
    EXPECT_FALSE(root.context().valid());
    EXPECT_FALSE(obs::tracingEnabled());
}

TEST(TraceContext, EveryRootSampledAtPeriodOne)
{
    TracingOn tracing(1);
    for (int i = 0; i < 5; ++i) {
        obs::TraceRoot root("test.root");
        EXPECT_TRUE(root.context().sampled());
        EXPECT_NE(root.context().parent_span_id, 0u);
    }
    // Each root is a distinct trace...
    const auto spans = obs::SpanBuffer::instance().snapshot();
    ASSERT_EQ(spans.size(), 5u);
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_NE(spans[i].trace_lo, spans[0].trace_lo);
    // ...and root spans have no parent.
    for (const auto &s : spans)
        EXPECT_EQ(s.parent_span_id, 0u);
}

TEST(TraceContext, OneInNSamplingIsPeriodic)
{
    // The root counter is process-global (never reset), so assert the
    // period property over a window rather than absolute positions:
    // any 3k consecutive roots contain exactly k sampled ones, and
    // the sampled positions are congruent mod 3.
    TracingOn tracing(3);
    std::vector<int> sampled_at;
    constexpr int kRoots = 12;
    for (int i = 0; i < kRoots; ++i) {
        obs::TraceRoot root("test.root");
        if (root.context().sampled())
            sampled_at.push_back(i);
    }
    ASSERT_EQ(sampled_at.size(), kRoots / 3);
    for (std::size_t i = 1; i < sampled_at.size(); ++i)
        EXPECT_EQ(sampled_at[i] - sampled_at[i - 1], 3);
}

TEST(TraceContext, NestedSpansFormAParentChain)
{
    TracingOn tracing(1);
    {
        obs::TraceRoot root("test.root");
        ASSERT_TRUE(root.context().sampled());
        OBS_SPAN("test.outer");
        {
            OBS_SPAN("test.inner");
        }
    }
    const auto spans = obs::SpanBuffer::instance().snapshot();
    ASSERT_EQ(spans.size(), 3u); // inner, outer, root (closing order)
    const auto &inner = spans[0];
    const auto &outer = spans[1];
    const auto &root = spans[2];
    EXPECT_STREQ(inner.name, "test.inner");
    EXPECT_STREQ(outer.name, "test.outer");
    EXPECT_STREQ(root.name, "test.root");
    EXPECT_EQ(inner.parent_span_id, outer.span_id);
    EXPECT_EQ(outer.parent_span_id, root.span_id);
    EXPECT_EQ(root.parent_span_id, 0u);
    // One trace id across the tree.
    EXPECT_EQ(inner.trace_hi, root.trace_hi);
    EXPECT_EQ(inner.trace_lo, root.trace_lo);
    EXPECT_EQ(outer.trace_lo, root.trace_lo);
}

TEST(TraceContext, ScopedContextInstallsAndRestores)
{
    TracingOn tracing(1);
    obs::TraceContext wire;
    wire.trace_hi = 0xabcd;
    wire.trace_lo = 0x1234;
    wire.parent_span_id = 77;
    wire.flags = obs::kTraceFlagSampled;
    {
        obs::ScopedTraceContext scope(wire);
        EXPECT_EQ(obs::currentTraceContext().trace_hi, 0xabcdu);
        OBS_SPAN("test.under_wire_context");
    }
    EXPECT_FALSE(obs::currentTraceContext().valid());
    const auto spans = obs::SpanBuffer::instance().snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].trace_hi, 0xabcdu);
    EXPECT_EQ(spans[0].trace_lo, 0x1234u);
    EXPECT_EQ(spans[0].parent_span_id, 77u);
    // An invalid context is a no-op install.
    obs::ScopedTraceContext noop(obs::TraceContext{});
    EXPECT_FALSE(obs::currentTraceContext().valid());
}

TEST(TraceContext, ThreadPoolTasksInheritTheSubmittersTrace)
{
    TracingOn tracing(1);
    obs::TraceRoot root("test.root");
    ASSERT_TRUE(root.context().sampled());
    const std::uint64_t want_lo = root.context().trace_lo;
    std::vector<std::uint64_t> seen(16, 0);
    util::parallelFor(seen.size(), [&](std::size_t i) {
        seen[i] = obs::currentTraceContext().trace_lo;
    });
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], want_lo) << "task " << i;
}

TEST(TraceContext, SpanBufferOverflowCountsDrops)
{
    TracingOn tracing(1);
    obs::SpanBuffer &buffer = obs::SpanBuffer::instance();
    const std::uint64_t before_counter =
        obs::Registry::instance().counter("obs.spans.dropped").value();
    obs::SpanRecord span;
    span.trace_hi = 1;
    span.name = "test.flood";
    for (std::size_t i = 0;
         i < obs::SpanBuffer::kMaxSpans + 10; ++i)
        buffer.record(span);
    EXPECT_EQ(buffer.snapshot().size(), obs::SpanBuffer::kMaxSpans);
    EXPECT_EQ(buffer.droppedCount(), 10u);
    EXPECT_EQ(obs::Registry::instance()
                      .counter("obs.spans.dropped")
                      .value() -
                  before_counter,
              10u);
    // clear() resets the drop accounting too.
    buffer.clear();
    EXPECT_EQ(buffer.droppedCount(), 0u);
}

TEST(TraceContext, JsonlDumpRoundTripsSpanFields)
{
    TracingOn tracing(1);
    {
        obs::TraceRoot root("test.jsonl");
        ASSERT_TRUE(root.context().sampled());
    }
    const std::string path =
        "/tmp/ppm_spans_" + std::to_string(::getpid()) + ".jsonl";
    ASSERT_TRUE(obs::SpanBuffer::instance().writeJsonl(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[512] = {};
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    std::fclose(f);
    ::unlink(path.c_str());
    const std::string text(line);
    EXPECT_NE(text.find("\"name\":\"test.jsonl\""), std::string::npos);
    EXPECT_NE(text.find("\"trace\":\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\":"), std::string::npos);
}

// --- protocol v4 trace block -----------------------------------------

TEST(TraceWire, FrameCarriesTheThreadContext)
{
    TracingOn tracing(1);
    obs::TraceContext ctx;
    ctx.trace_hi = 0x1111222233334444ull;
    ctx.trace_lo = 0x5555666677778888ull;
    ctx.parent_span_id = 0x9999aaaabbbbccccull;
    ctx.flags = obs::kTraceFlagSampled;
    obs::ScopedTraceContext scope(ctx);

    const auto bytes = serve::encodePing(7);
    const serve::Frame frame = serve::decodeFrame(bytes);
    EXPECT_EQ(frame.version, serve::kVersion);
    EXPECT_EQ(frame.trace.trace_hi, ctx.trace_hi);
    EXPECT_EQ(frame.trace.trace_lo, ctx.trace_lo);
    EXPECT_EQ(frame.trace.parent_span_id, ctx.parent_span_id);
    EXPECT_TRUE(frame.trace.sampled());
}

TEST(TraceWire, UntracedFrameCarriesAZeroContext)
{
    obs::setTraceSampleEvery(0);
    const serve::Frame frame =
        serve::decodeFrame(serve::encodePing(7));
    EXPECT_FALSE(frame.trace.valid());
    EXPECT_EQ(frame.version, serve::kVersion);
}

TEST(TraceWire, TraceRequestAndResponseRoundTrip)
{
    serve::TraceRequest req;
    req.nonce = 42;
    req.drain = true;
    const serve::Frame req_frame =
        serve::decodeFrame(serve::encodeTraceRequest(req));
    ASSERT_EQ(req_frame.type, serve::MsgType::TraceRequest);
    const serve::TraceRequest parsed_req =
        serve::parseTraceRequest(req_frame.payload);
    EXPECT_EQ(parsed_req.nonce, 42u);
    EXPECT_TRUE(parsed_req.drain);

    serve::TraceDump dump;
    dump.pid = 1234;
    dump.dropped = 5;
    dump.endpoint = "127.0.0.1:7070";
    serve::TraceSpan span;
    span.trace_hi = 7;
    span.trace_lo = 8;
    span.span_id = 9;
    span.parent_span_id = 10;
    span.name = "serve.request";
    span.start_unix_ns = 1'700'000'000'000'000'000ull;
    span.dur_ns = 1500;
    span.tid = 3;
    dump.spans.push_back(span);
    const serve::Frame resp_frame =
        serve::decodeFrame(serve::encodeTraceResponse(dump));
    ASSERT_EQ(resp_frame.type, serve::MsgType::TraceResponse);
    const serve::TraceDump parsed =
        serve::parseTraceResponse(resp_frame.payload);
    EXPECT_EQ(parsed.pid, 1234u);
    EXPECT_EQ(parsed.dropped, 5u);
    EXPECT_EQ(parsed.endpoint, "127.0.0.1:7070");
    ASSERT_EQ(parsed.spans.size(), 1u);
    EXPECT_EQ(parsed.spans[0].name, "serve.request");
    EXPECT_EQ(parsed.spans[0].start_unix_ns, span.start_unix_ns);
    EXPECT_EQ(parsed.spans[0].tid, 3u);
}

// --- wire-version skew ------------------------------------------------

TEST(VersionSkew, V3FramesHaveNoTraceBlockAndStillDecode)
{
    serve::ScopedWireVersion v3(3);
    const auto bytes = serve::encodePing(9);
    // v3 layout: 12-byte header + payload + CRC, no trace block.
    EXPECT_EQ(bytes.size(),
              serve::kHeaderSize + 8 + serve::kTrailerSize);
    const serve::Frame frame = serve::decodeFrame(bytes);
    EXPECT_EQ(frame.version, 3u);
    EXPECT_FALSE(frame.trace.valid());
    EXPECT_EQ(serve::parsePing(frame.payload), 9u);
}

TEST(VersionSkew, V4FrameIsExactlyTraceBlockLongerThanV3)
{
    std::size_t v3_size = 0;
    {
        serve::ScopedWireVersion v3(3);
        v3_size = serve::encodePing(1).size();
    }
    EXPECT_EQ(serve::encodePing(1).size(),
              v3_size + serve::kTraceBlockSize);
}

TEST(VersionSkew, RejectsVersionsOutsideTheSupportedRange)
{
    EXPECT_THROW(serve::ScopedWireVersion bad(2),
                 serve::ProtocolError);
    EXPECT_THROW(serve::ScopedWireVersion bad(5),
                 serve::ProtocolError);
}

TEST(VersionSkew, StatsRoundTripsAndMergesAcrossVersions)
{
    // A v3 poller asking a v4 server for STATS: the reply is encoded
    // in the requester's version, and snapshots polled from mixed
    // v3/v4 servers merge cleanly (satellite: minor-version skew).
    obs::Snapshot snap_v3;
    snap_v3.counters.push_back({"serve.requests", 10});
    snap_v3.histograms.push_back(
        {"slo.predict", 2, 3000,
         std::vector<std::uint64_t>(obs::Histogram::kBuckets, 0)});
    snap_v3.histograms[0].buckets[1] = 2;

    obs::Snapshot snap_v4 = snap_v3;
    snap_v4.counters[0].value = 32;

    std::vector<std::uint8_t> v3_bytes;
    {
        serve::ScopedWireVersion v3(3);
        v3_bytes = serve::encodeStatsResponse(snap_v3);
    }
    const std::vector<std::uint8_t> v4_bytes =
        serve::encodeStatsResponse(snap_v4);

    const serve::Frame f3 = serve::decodeFrame(v3_bytes);
    const serve::Frame f4 = serve::decodeFrame(v4_bytes);
    EXPECT_EQ(f3.version, 3u);
    EXPECT_EQ(f4.version, serve::kVersion);

    // The STATS payload schema is version-independent: both parse,
    // and the merged view sums by name exactly as same-version polls
    // would.
    obs::Snapshot merged = serve::parseStatsResponse(f3.payload);
    obs::merge(merged, serve::parseStatsResponse(f4.payload));
    ASSERT_EQ(merged.counters.size(), 1u);
    EXPECT_EQ(merged.counters[0].value, 42u);
    ASSERT_EQ(merged.histograms.size(), 1u);
    EXPECT_EQ(merged.histograms[0].count, 4u);
    EXPECT_EQ(merged.histograms[0].total_ns, 6000u);
    EXPECT_EQ(merged.histograms[0].buckets[1], 4u);
}

TEST(VersionSkew, ReplyVersionFollowsTheThreadNotTheProcess)
{
    // Nested scopes restore correctly (a v4 connection served right
    // after a v3 one must not inherit the older version).
    EXPECT_EQ(serve::wireVersion(), serve::kVersion);
    {
        serve::ScopedWireVersion v3(3);
        EXPECT_EQ(serve::wireVersion(), 3u);
        {
            serve::ScopedWireVersion v4(4);
            EXPECT_EQ(serve::wireVersion(), 4u);
        }
        EXPECT_EQ(serve::wireVersion(), 3u);
    }
    EXPECT_EQ(serve::wireVersion(), serve::kVersion);
}

} // namespace
