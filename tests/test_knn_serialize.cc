/**
 * @file
 * Unit tests for the kNN baseline model and RBF network
 * serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/knn_model.hh"
#include "dspace/paper_space.hh"
#include "math/rng.hh"
#include "rbf/serialize.hh"
#include "rbf/trainer.hh"

namespace {

using namespace ppm;
using namespace ppm::core;

dspace::DesignSpace
unitSpace2()
{
    dspace::DesignSpace s;
    s.add(dspace::Parameter("a", 0, 1, dspace::kSampleSizeLevels,
                            dspace::Transform::Linear, false));
    s.add(dspace::Parameter("b", 0, 1, dspace::kSampleSizeLevels,
                            dspace::Transform::Linear, false));
    return s;
}

TEST(Knn, ExactHitReturnsTrainingResponse)
{
    auto space = unitSpace2();
    KnnPerformanceModel m(space, {{0.2, 0.2}, {0.8, 0.8}}, {1.0, 5.0},
                          2);
    EXPECT_DOUBLE_EQ(m.predict({0.2, 0.2}), 1.0);
    EXPECT_DOUBLE_EQ(m.predict({0.8, 0.8}), 5.0);
}

TEST(Knn, InterpolatesBetweenNeighbours)
{
    auto space = unitSpace2();
    KnnPerformanceModel m(space, {{0.0, 0.0}, {1.0, 1.0}}, {0.0, 10.0},
                          2);
    // Equidistant: inverse-distance weights are equal.
    EXPECT_NEAR(m.predict({0.5, 0.5}), 5.0, 1e-9);
    // Closer to the second point: pulled toward 10.
    EXPECT_GT(m.predict({0.8, 0.8}), 7.0);
}

TEST(Knn, KOneIsNearestNeighbour)
{
    auto space = unitSpace2();
    KnnPerformanceModel m(space, {{0.1, 0.1}, {0.9, 0.9}}, {2.0, 8.0},
                          1);
    EXPECT_DOUBLE_EQ(m.predict({0.2, 0.2}), 2.0);
    EXPECT_DOUBLE_EQ(m.predict({0.7, 0.7}), 8.0);
}

TEST(Knn, KClampedToSampleSize)
{
    auto space = unitSpace2();
    KnnPerformanceModel m(space, {{0.5, 0.5}}, {3.0}, 10);
    EXPECT_EQ(m.k(), 1);
    EXPECT_DOUBLE_EQ(m.predict({0.0, 0.0}), 3.0);
}

TEST(Knn, LearnsSmoothFunctionRoughly)
{
    auto space = unitSpace2();
    math::Rng rng(5);
    std::vector<dspace::DesignPoint> pts;
    std::vector<double> ys;
    for (int i = 0; i < 150; ++i) {
        pts.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(2.0 + pts.back()[0] + 0.5 * pts.back()[1]);
    }
    KnnPerformanceModel m(space, pts, ys, 5);
    double worst = 0;
    for (int i = 0; i < 50; ++i) {
        const dspace::DesignPoint q{rng.uniform(), rng.uniform()};
        const double truth = 2.0 + q[0] + 0.5 * q[1];
        worst = std::max(worst, std::fabs(m.predict(q) - truth));
    }
    EXPECT_LT(worst, 0.4);
}

TEST(Knn, DescribeMentionsK)
{
    auto space = unitSpace2();
    KnnPerformanceModel m(space, {{0.5, 0.5}, {0.2, 0.4}}, {1, 2}, 2);
    EXPECT_NE(m.describe().find("knn"), std::string::npos);
    EXPECT_NE(m.describe().find("k=2"), std::string::npos);
}

TEST(Knn, PaperSpaceTransformsApplied)
{
    // With the log transform, 512KB is the unit midpoint of
    // 256..1024, so a query at 512 weights both neighbours equally.
    dspace::DesignSpace space;
    space.add(dspace::Parameter("L2", 256, 1024,
                                dspace::kSampleSizeLevels,
                                dspace::Transform::Log, true));
    KnnPerformanceModel m(space, {{256}, {1024}}, {1.0, 3.0}, 2);
    EXPECT_NEAR(m.predict({512}), 2.0, 1e-9);
}

// --- serialization -------------------------------------------------------

rbf::RbfNetwork
trainSmallNetwork()
{
    math::Rng rng(7);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 60; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(1.0 + xs.back()[0] + std::sin(3 * xs.back()[1]));
    }
    rbf::TrainerOptions opts;
    opts.p_min_grid = {1};
    opts.alpha_grid = {6};
    return rbf::trainRbfModel(xs, ys, opts).network;
}

TEST(Serialize, RoundTripThroughStream)
{
    const auto net = trainSmallNetwork();
    std::stringstream ss;
    rbf::saveNetwork(net, ss);
    const auto loaded = rbf::loadNetwork(ss);

    ASSERT_EQ(loaded.numBases(), net.numBases());
    ASSERT_EQ(loaded.dimensions(), net.dimensions());
    math::Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const dspace::UnitPoint x{rng.uniform(), rng.uniform(),
                                  rng.uniform()};
        EXPECT_NEAR(loaded.predict(x), net.predict(x), 1e-12);
    }
}

TEST(Serialize, RoundTripThroughFile)
{
    const auto net = trainSmallNetwork();
    const std::string path = "test_rbfnet_roundtrip.txt";
    rbf::saveNetwork(net, path);
    const auto loaded = rbf::loadNetwork(path);
    EXPECT_EQ(loaded.numBases(), net.numBases());
    const dspace::UnitPoint x{0.3, 0.6, 0.9};
    EXPECT_NEAR(loaded.predict(x), net.predict(x), 1e-12);
    std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream ss("not-a-network 1\n");
    EXPECT_THROW(rbf::loadNetwork(ss), std::runtime_error);
}

TEST(Serialize, RejectsWrongVersion)
{
    std::stringstream ss("ppm-rbfnet 99\ndims 2 bases 1\n");
    EXPECT_THROW(rbf::loadNetwork(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedBasis)
{
    std::stringstream ss("ppm-rbfnet 1\ndims 2 bases 1\n0.5 0.5 0.1\n");
    EXPECT_THROW(rbf::loadNetwork(ss), std::runtime_error);
}

TEST(Serialize, RejectsNonPositiveRadius)
{
    std::stringstream ss(
        "ppm-rbfnet 1\ndims 1 bases 1\n0.5 0.0 1.0\n");
    EXPECT_THROW(rbf::loadNetwork(ss), std::runtime_error);
}

TEST(Serialize, RejectsDegenerateHeader)
{
    std::stringstream a("ppm-rbfnet 1\ndims 0 bases 1\n");
    EXPECT_THROW(rbf::loadNetwork(a), std::runtime_error);
    std::stringstream b("ppm-rbfnet 1\ndims 2 bases 0\n");
    EXPECT_THROW(rbf::loadNetwork(b), std::runtime_error);
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(rbf::loadNetwork(std::string("/no/such/file.txt")),
                 std::runtime_error);
}

} // namespace
