/**
 * @file
 * Chaos suite for the transport fault injector: spec parsing, decision
 * determinism, the exact on-the-wire effect of every fault kind over a
 * socketpair, and end-to-end runs where each fault class — and all of
 * them at once, over TCP — is injected into a live sharded pipeline
 * and the batch still completes with CPI values bit-identical to a
 * fault-free run (faults surface as IoError/ProtocolError and the
 * retry/backoff/dead-latch/fallback machinery absorbs them).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/oracle.hh"
#include "dspace/paper_space.hh"
#include "linreg/linear_model.hh"
#include "math/rng.hh"
#include "rbf/network.hh"
#include "sampling/sample_gen.hh"
#include "serve/fault_injector.hh"
#include "serve/model_snapshot.hh"
#include "serve/predict_oracle.hh"
#include "serve/remote_oracle.hh"
#include "serve/sim_server.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

extern char **environ;

namespace {

namespace fs = std::filesystem;
using namespace ppm;

// --- spec parsing -----------------------------------------------------

TEST(FaultSpec, EmptySpecIsAllDefaults)
{
    const serve::FaultSpec spec = serve::FaultSpec::parse("");
    EXPECT_EQ(spec.seed, 1u);
    EXPECT_EQ(spec.drop, 0.0);
    EXPECT_EQ(spec.delay, 0.0);
    EXPECT_EQ(spec.stall, 0.0);
    EXPECT_EQ(spec.truncate, 0.0);
    EXPECT_EQ(spec.bitflip, 0.0);
    EXPECT_EQ(spec.reset, 0.0);
    EXPECT_EQ(spec.delay_ms, 5);
    EXPECT_EQ(spec.stall_ms, 700);
}

TEST(FaultSpec, ParsesEveryKeyWithEitherSeparator)
{
    const serve::FaultSpec spec = serve::FaultSpec::parse(
        "seed=42;drop=0.25,delay=0.125;delay_ms=7,stall=0.0625;"
        "stall_ms=900;truncate=0.03125,bitflip=0.015625;reset=0.5");
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.drop, 0.25);
    EXPECT_EQ(spec.delay, 0.125);
    EXPECT_EQ(spec.stall, 0.0625);
    EXPECT_EQ(spec.truncate, 0.03125);
    EXPECT_EQ(spec.bitflip, 0.015625);
    EXPECT_EQ(spec.reset, 0.5);
    EXPECT_EQ(spec.delay_ms, 7);
    EXPECT_EQ(spec.stall_ms, 900);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    using serve::FaultSpec;
    EXPECT_THROW(FaultSpec::parse("nosuchkey=1"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSpec::parse("drop"), std::invalid_argument);
    EXPECT_THROW(FaultSpec::parse("drop=abc"), std::invalid_argument);
    EXPECT_THROW(FaultSpec::parse("drop=0.5x"), std::invalid_argument);
    EXPECT_THROW(FaultSpec::parse("drop=1.5"), std::invalid_argument);
    EXPECT_THROW(FaultSpec::parse("drop=-0.1"), std::invalid_argument);
    // Individually legal probabilities whose sum exceeds 1.
    EXPECT_THROW(FaultSpec::parse("drop=0.6;reset=0.6"),
                 std::invalid_argument);
}

// --- decision determinism ---------------------------------------------

TEST(FaultInjector, DecisionsArePureInSeedAndIndex)
{
    const serve::FaultSpec spec = serve::FaultSpec::parse(
        "seed=7;drop=0.15;delay=0.15;stall=0.1;truncate=0.15;"
        "bitflip=0.15;reset=0.1");
    const serve::FaultInjector a(spec);
    const serve::FaultInjector b(spec);
    int faults = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const auto da = a.decide(i, 512);
        const auto db = b.decide(i, 512);
        EXPECT_EQ(da.kind, db.kind) << "index " << i;
        EXPECT_EQ(da.sleep_ms, db.sleep_ms) << "index " << i;
        EXPECT_EQ(da.target, db.target) << "index " << i;
        if (da.kind != serve::FaultKind::None)
            ++faults;
        if (da.kind == serve::FaultKind::Truncate)
            EXPECT_LT(da.target, 512u);
        if (da.kind == serve::FaultKind::BitFlip)
            EXPECT_LT(da.target, 512u * 8);
    }
    // ~80% fault probability over 1000 draws: faults certainly occur,
    // and so do clean frames.
    EXPECT_GT(faults, 500);
    EXPECT_LT(faults, 1000);
    // decide() is const and does not advance the sequence.
    EXPECT_EQ(a.framesSeen(), 0u);

    serve::FaultInjector other(serve::FaultSpec::parse(
        "seed=8;drop=0.15;delay=0.15;stall=0.1;truncate=0.15;"
        "bitflip=0.15;reset=0.1"));
    bool differs = false;
    for (std::uint64_t i = 0; i < 1000 && !differs; ++i)
        differs = other.decide(i, 512).kind != a.decide(i, 512).kind;
    EXPECT_TRUE(differs) << "seed does not influence decisions";
}

TEST(FaultInjector, NextSendFaultAdvancesAndCounts)
{
    serve::FaultInjector injector(
        serve::FaultSpec::parse("seed=3;drop=0.5"));
    std::uint64_t drops = 0;
    for (int i = 0; i < 200; ++i)
        if (injector.nextSendFault(64).kind == serve::FaultKind::Drop)
            ++drops;
    EXPECT_EQ(injector.framesSeen(), 200u);
    EXPECT_EQ(injector.count(serve::FaultKind::Drop), drops);
    EXPECT_EQ(injector.injectedTotal(), drops);
    EXPECT_GT(drops, 50u);
    EXPECT_LT(drops, 150u);
}

// --- wire-level primitives over a socketpair --------------------------

/** Install an injector for one test; uninstall on scope exit. */
struct InjectorGuard
{
    explicit InjectorGuard(const std::string &spec)
        : injector(std::make_shared<serve::FaultInjector>(
              serve::FaultSpec::parse(spec)))
    {
        serve::FaultInjector::install(injector);
    }
    ~InjectorGuard() { serve::FaultInjector::install(nullptr); }
    std::shared_ptr<serve::FaultInjector> injector;
};

/** Connected nonblocking socketpair (frame I/O needs nonblocking). */
struct WirePair
{
    serve::FdGuard a, b;

    WirePair()
    {
        int fds[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            throw std::runtime_error("socketpair failed");
        for (int fd : fds)
            ::fcntl(fd, F_SETFL,
                    ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        a.reset(fds[0]);
        b.reset(fds[1]);
    }
};

TEST(FaultWire, DropSwallowsTheFrame)
{
    InjectorGuard guard("seed=1;drop=1");
    WirePair wire;
    serve::writeFrame(wire.a.get(), serve::encodePing(1), 500);
    EXPECT_THROW(serve::readFrame(wire.b.get(), 100), serve::IoError);
    EXPECT_EQ(guard.injector->count(serve::FaultKind::Drop), 1u);
}

TEST(FaultWire, DelayedFrameArrivesIntact)
{
    InjectorGuard guard("seed=1;delay=1;delay_ms=20");
    WirePair wire;
    serve::writeFrame(wire.a.get(), serve::encodePing(0xFEED), 500);
    const serve::Frame got = serve::readFrame(wire.b.get(), 500);
    EXPECT_EQ(got.type, serve::MsgType::Ping);
    EXPECT_EQ(serve::parsePing(got.payload), 0xFEEDu);
    EXPECT_EQ(guard.injector->count(serve::FaultKind::Delay), 1u);
}

TEST(FaultWire, StalledFrameOverrunsTheReadTimeout)
{
    InjectorGuard guard("seed=1;stall=1;stall_ms=400");
    WirePair wire;
    // The sender sleeps in writeFrame, so it must run concurrently
    // for the reader's (much shorter) timeout to be exercised.
    std::thread writer([&] {
        try {
            serve::writeFrame(wire.a.get(), serve::encodePing(2),
                              1000);
        } catch (const std::exception &) {
        }
    });
    EXPECT_THROW(serve::readFrame(wire.b.get(), 100), serve::IoError);
    writer.join();
    EXPECT_EQ(guard.injector->count(serve::FaultKind::Stall), 1u);
}

TEST(FaultWire, TruncatedFrameReadsAsEof)
{
    InjectorGuard guard("seed=1;truncate=1");
    WirePair wire;
    serve::writeFrame(wire.a.get(), serve::encodePing(3), 500);
    EXPECT_THROW(serve::readFrame(wire.b.get(), 500), serve::IoError);
    EXPECT_EQ(guard.injector->count(serve::FaultKind::Truncate), 1u);
}

TEST(FaultWire, BitFlippedPayloadFailsTheCrcCheck)
{
    const std::vector<std::uint8_t> frame = serve::encodePing(4);
    // Pick a seed whose first flip lands past the header, so the
    // corruption must be caught by the payload CRC (a header flip is
    // also rejected, but via ProtocolError or a read timeout
    // depending on the field — this test pins the CRC path).
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 500 && seed == 0; ++s) {
        const serve::FaultInjector probe(serve::FaultSpec::parse(
            "seed=" + std::to_string(s) + ";bitflip=1"));
        if (probe.decide(0, frame.size()).target / 8 >=
            serve::kHeaderSize)
            seed = s;
    }
    ASSERT_NE(seed, 0u);

    InjectorGuard guard("seed=" + std::to_string(seed) + ";bitflip=1");
    WirePair wire;
    serve::writeFrame(wire.a.get(), frame, 500);
    EXPECT_THROW(serve::readFrame(wire.b.get(), 500),
                 serve::ProtocolError);
    EXPECT_EQ(guard.injector->count(serve::FaultKind::BitFlip), 1u);
}

TEST(FaultWire, ResetThrowsAtTheSenderAndSeversThePeer)
{
    InjectorGuard guard("seed=1;reset=1");
    WirePair wire;
    EXPECT_THROW(
        serve::writeFrame(wire.a.get(), serve::encodePing(5), 500),
        serve::IoError);
    EXPECT_THROW(serve::readFrame(wire.b.get(), 100), serve::IoError);
    EXPECT_EQ(guard.injector->count(serve::FaultKind::Reset), 1u);
}

// --- chaos end-to-end -------------------------------------------------

constexpr std::size_t kTraceLen = 12000;
constexpr std::uint64_t kWarmup = 2000;
constexpr int kBatchSize = 12;

sim::SimOptions
simOptions()
{
    sim::SimOptions opts;
    opts.warmup_instructions = kWarmup;
    return opts;
}

/** Shared mcf inputs and the fault-free reference responses. */
struct Scenario
{
    dspace::DesignSpace space = dspace::paperTrainSpace();
    trace::Trace trace;
    std::vector<dspace::DesignPoint> batch;
    std::vector<double> reference;

    Scenario()
        : trace(trace::generateTrace(trace::profileByName("mcf"),
                                     kTraceLen))
    {
        math::Rng rng(42);
        batch =
            sampling::bestLatinHypercube(space, kBatchSize, 4, rng)
                .points;
        core::SimulatorOracle local(space, trace, simOptions());
        reference = local.evaluateAll(batch);
    }
};

Scenario &
scenario()
{
    static Scenario s;
    return s;
}

std::string
uniqueSocket(const std::string &tag)
{
    return "/tmp/ppm_chaos_" + std::to_string(::getpid()) + "_" + tag +
           ".sock";
}

/**
 * Short timeouts everywhere so injected faults are detected fast:
 * server read timeouts free its workers, client read timeouts trigger
 * retries, and the dead-socket latch hands leftovers to the local
 * fallback — which is what makes every chaos run terminate with
 * bit-identical values.
 */
serve::ServerOptions
chaosServer(const std::string &endpoint, unsigned workers)
{
    serve::ServerOptions opts;
    opts.socket_path = endpoint;
    opts.num_workers = workers;
    opts.io_timeout_ms = 400;
    return opts;
}

serve::RemoteOptions
chaosRemote(std::vector<std::string> sockets)
{
    serve::RemoteOptions opts;
    opts.sockets = std::move(sockets);
    opts.connect_timeout_ms = 500;
    opts.io_timeout_ms = 400;
    opts.max_attempts = 3;
    opts.backoff_initial_ms = 1;
    opts.backoff_max_ms = 4;
    opts.chunk_points = 3;
    opts.max_connections = 1; // serialize frames: deterministic order
    return opts;
}

/** Run the sharded batch under @p spec and check it against truth. */
void
runChaos(const std::string &spec, const std::string &endpoint,
         unsigned workers, bool expect_remote_progress)
{
    Scenario &s = scenario();
    serve::SimServer server(chaosServer(endpoint, workers));
    server.start();

    InjectorGuard guard(spec);
    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi,
                               chaosRemote({server.endpointSpec()}));
    const std::vector<double> got = remote.evaluateAll(s.batch);
    serve::FaultInjector::install(nullptr); // quiesce before stop()
    server.stop();

    EXPECT_EQ(got, s.reference)
        << "fault spec \"" << spec
        << "\" perturbed results instead of only the transport";
    EXPECT_EQ(remote.remotePoints() + remote.fallbackPoints(),
              s.batch.size());
    EXPECT_GT(guard.injector->framesSeen(), 0u);
    if (expect_remote_progress)
        EXPECT_GT(remote.remotePoints(), 0u);
    else
        EXPECT_GT(guard.injector->injectedTotal(), 0u);
}

TEST(FaultChaosE2E, EveryFrameDroppedStillCompletes)
{
    // drop=1: no frame ever arrives; everything falls back locally.
    runChaos("seed=11;drop=1", uniqueSocket("drop"), 2, false);
}

TEST(FaultChaosE2E, EveryFrameDelayedCompletesRemotely)
{
    // delay well inside the timeouts: traffic survives, just late.
    runChaos("seed=12;delay=1;delay_ms=10", uniqueSocket("delay"), 2,
             true);
}

TEST(FaultChaosE2E, StallPastTimeoutStillCompletes)
{
    // Every frame held past both read timeouts (400ms): peers give
    // up, retries stall too, the dead latch trips, fallback finishes.
    runChaos("seed=13;stall=1;stall_ms=800", uniqueSocket("stall"), 2,
             false);
}

TEST(FaultChaosE2E, TruncatedFramesStillComplete)
{
    runChaos("seed=14;truncate=1", uniqueSocket("trunc"), 2, false);
}

TEST(FaultChaosE2E, BitFlippedFramesStillComplete)
{
    runChaos("seed=15;bitflip=1", uniqueSocket("flip"), 2, false);
}

TEST(FaultChaosE2E, ConnectionResetsStillComplete)
{
    runChaos("seed=16;reset=1", uniqueSocket("reset"), 2, false);
}

TEST(FaultChaosE2E, PartialDropMixesRemoteAndFallback)
{
    // Half the frames dropped: some chunks make it through remotely,
    // the rest retry and eventually fall back — same values either
    // way.
    runChaos("seed=17;drop=0.5", uniqueSocket("mix"), 2, false);
}

TEST(FaultChaosE2E, KitchenSinkOverTcp)
{
    // All six fault classes at once, over a TCP loopback shard.
    runChaos("seed=18;drop=0.1;delay=0.1;delay_ms=5;stall=0.05;"
             "stall_ms=800;truncate=0.1;bitflip=0.1;reset=0.1",
             "127.0.0.1:0", 2, false);
}

// --- chaos over the prediction plane ----------------------------------

/**
 * PREDICT rides the same ShardedClient as EvalRequest, so the whole
 * chaos matrix applies unchanged: under any fault pattern the batch
 * must complete with predictions bit-identical to evaluating the
 * snapshot in-process — remote answers and local-fallback answers go
 * through the same predictWithSnapshot() on the same bytes.
 */
struct PredictScenario
{
    serve::ModelSnapshot snap;
    std::vector<dspace::DesignPoint> batch;
    std::vector<double> reference;

    PredictScenario()
    {
        const dspace::DesignSpace space = dspace::paperTrainSpace();
        const std::size_t dims = space.size();
        math::Rng rng(55);
        std::vector<rbf::GaussianBasis> bases;
        std::vector<double> weights;
        for (int b = 0; b < 6; ++b) {
            dspace::UnitPoint center(dims);
            std::vector<double> radius(dims);
            for (std::size_t d = 0; d < dims; ++d) {
                center[d] = rng.uniform();
                radius[d] = 0.2 + rng.uniform();
            }
            bases.emplace_back(std::move(center), std::move(radius));
            weights.push_back(rng.uniform() * 4 - 2);
        }
        snap.model_version = 1;
        snap.benchmark = "twolf";
        snap.trace_length = 100000;
        snap.train_points = 30;
        snap.p_min = 2;
        snap.alpha = 1.5;
        snap.space = space;
        snap.network =
            rbf::RbfNetwork(std::move(bases), std::move(weights));

        for (int i = 0; i < kBatchSize; ++i)
            batch.push_back(space.randomPoint(rng));
        reference = serve::predictWithSnapshot(snap, batch);
    }
};

PredictScenario &
predictScenario()
{
    static PredictScenario s;
    return s;
}

/** Sharded PREDICT under @p spec; values must match the snapshot. */
void
runPredictChaos(const std::string &spec, const std::string &endpoint,
                bool expect_remote_progress)
{
    PredictScenario &s = predictScenario();
    const std::string path =
        uniqueSocket("model") + ".ppmm"; // unique temp name
    serve::saveSnapshot(s.snap, path);
    serve::ServerOptions opts = chaosServer(endpoint, 2);
    opts.predict_snapshot = path;
    serve::SimServer server(opts);
    server.start();

    InjectorGuard guard(spec);
    serve::PredictOracle oracle(
        s.snap, chaosRemote({server.endpointSpec()}));
    const std::vector<double> got = oracle.evaluateAll(s.batch);
    serve::FaultInjector::install(nullptr); // quiesce before stop()
    server.stop();
    ::unlink(path.c_str());

    EXPECT_EQ(got, s.reference)
        << "fault spec \"" << spec
        << "\" perturbed predictions instead of only the transport";
    EXPECT_EQ(oracle.remotePoints() + oracle.fallbackPoints(),
              s.batch.size());
    EXPECT_GT(guard.injector->framesSeen(), 0u);
    if (expect_remote_progress)
        EXPECT_GT(oracle.remotePoints(), 0u);
    else
        EXPECT_GT(guard.injector->injectedTotal(), 0u);
}

TEST(PredictChaosE2E, EveryFrameDroppedStillPredicts)
{
    runPredictChaos("seed=21;drop=1", "127.0.0.1:0", false);
}

TEST(PredictChaosE2E, EveryFrameDelayedPredictsRemotely)
{
    runPredictChaos("seed=22;delay=1;delay_ms=10", "127.0.0.1:0",
                    true);
}

TEST(PredictChaosE2E, StallPastTimeoutStillPredicts)
{
    runPredictChaos("seed=23;stall=1;stall_ms=800", "127.0.0.1:0",
                    false);
}

TEST(PredictChaosE2E, TruncatedFramesStillPredict)
{
    runPredictChaos("seed=24;truncate=1", "127.0.0.1:0", false);
}

TEST(PredictChaosE2E, BitFlippedFramesStillPredict)
{
    runPredictChaos("seed=25;bitflip=1", "127.0.0.1:0", false);
}

TEST(PredictChaosE2E, ConnectionResetsStillPredict)
{
    runPredictChaos("seed=26;reset=1", "127.0.0.1:0", false);
}

TEST(PredictChaosE2E, KitchenSinkOverTcp)
{
    runPredictChaos(
        "seed=27;drop=0.1;delay=0.1;delay_ms=5;stall=0.05;"
        "stall_ms=800;truncate=0.1;bitflip=0.1;reset=0.1",
        "127.0.0.1:0", false);
}

TEST(FaultChaosE2E, ServerSigkilledMidBatchOverTcp)
{
    // The non-injected half of the chaos matrix: a real ppm_serve
    // process, reached over TCP, killed outright while the batch is
    // in flight. No injector — the fault is the process dying.
    Scenario &s = scenario();
    const std::uint16_t port = static_cast<std::uint16_t>(
        21000 + (::getpid() % 30000));
    const std::string endpoint =
        "127.0.0.1:" + std::to_string(port);

    const char *argv[] = {PPM_SERVE_BIN, "--listen", endpoint.c_str(),
                          "--workers", "2", nullptr};
    pid_t pid = -1;
    ASSERT_EQ(::posix_spawn(&pid, PPM_SERVE_BIN, nullptr, nullptr,
                            const_cast<char *const *>(argv), environ),
              0);

    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
        try {
            serve::FdGuard conn = serve::connectEndpoint(
                serve::parseEndpoint(endpoint), 100);
            serve::writeFrame(conn.get(), serve::encodePing(1), 500);
            up = serve::readFrame(conn.get(), 500).type ==
                 serve::MsgType::Pong;
        } catch (const std::exception &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(25));
        }
    }
    ASSERT_TRUE(up) << "ppm_serve never came up on " << endpoint;

    serve::RemoteOptions opts = chaosRemote({endpoint});
    opts.io_timeout_ms = 60'000; // real simulation time, no faults
    opts.chunk_points = 2;
    serve::RemoteOracle remote(s.space, "mcf", s.trace, simOptions(),
                               core::Metric::Cpi, opts);

    std::atomic<bool> done{false};
    std::thread killer([&] {
        while (!done.load() && remote.remoteChunksServed() == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ::kill(pid, SIGKILL);
    });

    const std::vector<double> got = remote.evaluateAll(s.batch);
    done.store(true);
    killer.join();
    int status = 0;
    ::waitpid(pid, &status, 0);

    EXPECT_EQ(got, s.reference);
    EXPECT_GE(remote.remoteChunksServed(), 1u);
    EXPECT_EQ(remote.remotePoints() + remote.fallbackPoints(),
              s.batch.size());
}

} // namespace
