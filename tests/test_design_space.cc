/**
 * @file
 * Unit tests for DesignSpace and the paper's Table 1 / Table 2 spaces.
 */

#include <gtest/gtest.h>

#include "dspace/design_space.hh"
#include "dspace/paper_space.hh"
#include "math/rng.hh"

namespace {

using namespace ppm::dspace;

DesignSpace
smallSpace()
{
    DesignSpace s;
    s.add(Parameter("a", 0, 10, 11, Transform::Linear, true));
    s.add(Parameter("b", 1, 16, 5, Transform::Log, false));
    return s;
}

TEST(DesignSpace, SizeAndNames)
{
    DesignSpace s = smallSpace();
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.param(0).name(), "a");
    EXPECT_EQ(s.param(1).name(), "b");
    EXPECT_EQ(s.indexOf("b"), 1u);
    EXPECT_EQ(s.indexOf("zzz"), s.size());
}

TEST(DesignSpace, UnitRoundTrip)
{
    DesignSpace s = smallSpace();
    DesignPoint raw{5, 4};
    UnitPoint u = s.toUnit(raw);
    EXPECT_NEAR(u[0], 0.5, 1e-12);
    EXPECT_NEAR(u[1], 0.5, 1e-12); // log2(4/1)/log2(16/1) = 2/4
    DesignPoint back = s.fromUnit(u);
    EXPECT_NEAR(back[0], 5, 1e-9);
    EXPECT_NEAR(back[1], 4, 1e-9);
}

TEST(DesignSpace, FromUnitQuantizesIntegers)
{
    DesignSpace s = smallSpace();
    DesignPoint raw = s.fromUnit({0.46, 0.5});
    EXPECT_DOUBLE_EQ(raw[0], 5.0); // 4.6 rounds to 5
}

TEST(DesignSpace, SnapToLevels)
{
    DesignSpace s = smallSpace();
    DesignPoint raw{5.2, 3.1};
    DesignPoint snapped = s.snapToLevels(raw, 50);
    EXPECT_DOUBLE_EQ(snapped[0], 5.0); // 11 fixed levels, step 1
    // b has 5 levels: 1, 2, 4, 8, 16 -> 3.1 snaps to 4 (log scale).
    EXPECT_NEAR(snapped[1], 4.0, 1e-9);
}

TEST(DesignSpace, RandomPointsInsideSpace)
{
    DesignSpace s = smallSpace();
    ppm::math::Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        DesignPoint p = s.randomPoint(rng);
        EXPECT_TRUE(s.contains(p)) << s.describe(p);
    }
}

TEST(DesignSpace, ContainsRejectsWrongArityAndRange)
{
    DesignSpace s = smallSpace();
    EXPECT_FALSE(s.contains({1.0}));
    EXPECT_FALSE(s.contains({-1.0, 4.0}));
    EXPECT_FALSE(s.contains({5.0, 64.0}));
}

TEST(DesignSpace, DescribeMentionsNamesAndValues)
{
    DesignSpace s = smallSpace();
    const std::string d = s.describe({3, 8});
    EXPECT_NE(d.find("a=3"), std::string::npos);
    EXPECT_NE(d.find("b=8"), std::string::npos);
}

// --- paper spaces ----------------------------------------------------

TEST(PaperSpace, TrainSpaceHasNineParameters)
{
    DesignSpace s = paperTrainSpace();
    ASSERT_EQ(s.size(), static_cast<std::size_t>(kNumPaperParams));
    EXPECT_EQ(s.param(kPipeDepth).name(), "pipe_depth");
    EXPECT_EQ(s.param(kRobSize).name(), "ROB_size");
    EXPECT_EQ(s.param(kIqFrac).name(), "IQ_frac");
    EXPECT_EQ(s.param(kLsqFrac).name(), "LSQ_frac");
    EXPECT_EQ(s.param(kL2SizeKB).name(), "L2_size");
    EXPECT_EQ(s.param(kL2Lat).name(), "L2_lat");
    EXPECT_EQ(s.param(kIl1SizeKB).name(), "il1_size");
    EXPECT_EQ(s.param(kDl1SizeKB).name(), "dl1_size");
    EXPECT_EQ(s.param(kDl1Lat).name(), "dl1_lat");
}

TEST(PaperSpace, Table1Ranges)
{
    DesignSpace s = paperTrainSpace();
    EXPECT_DOUBLE_EQ(s.param(kPipeDepth).minValue(), 7);
    EXPECT_DOUBLE_EQ(s.param(kPipeDepth).maxValue(), 24);
    EXPECT_DOUBLE_EQ(s.param(kRobSize).minValue(), 24);
    EXPECT_DOUBLE_EQ(s.param(kRobSize).maxValue(), 128);
    EXPECT_DOUBLE_EQ(s.param(kIqFrac).minValue(), 0.25);
    EXPECT_DOUBLE_EQ(s.param(kIqFrac).maxValue(), 0.75);
    EXPECT_DOUBLE_EQ(s.param(kL2SizeKB).minValue(), 256);
    EXPECT_DOUBLE_EQ(s.param(kL2SizeKB).maxValue(), 8192);
    EXPECT_DOUBLE_EQ(s.param(kL2Lat).minValue(), 5);
    EXPECT_DOUBLE_EQ(s.param(kL2Lat).maxValue(), 20);
    EXPECT_DOUBLE_EQ(s.param(kDl1Lat).minValue(), 1);
    EXPECT_DOUBLE_EQ(s.param(kDl1Lat).maxValue(), 4);
}

TEST(PaperSpace, Table1LevelsAndTransforms)
{
    DesignSpace s = paperTrainSpace();
    EXPECT_EQ(s.param(kPipeDepth).levels(), 18);
    EXPECT_TRUE(s.param(kRobSize).sampleSizeLevels());
    EXPECT_TRUE(s.param(kIqFrac).sampleSizeLevels());
    EXPECT_TRUE(s.param(kLsqFrac).sampleSizeLevels());
    EXPECT_EQ(s.param(kL2SizeKB).levels(), 6);
    EXPECT_EQ(s.param(kL2SizeKB).transform(), Transform::Log);
    EXPECT_EQ(s.param(kL2Lat).levels(), 16);
    EXPECT_EQ(s.param(kIl1SizeKB).levels(), 4);
    EXPECT_EQ(s.param(kIl1SizeKB).transform(), Transform::Log);
    EXPECT_EQ(s.param(kDl1SizeKB).levels(), 4);
    EXPECT_EQ(s.param(kDl1Lat).levels(), 4);
    EXPECT_EQ(s.param(kPipeDepth).transform(), Transform::Linear);
}

TEST(PaperSpace, TestSpaceIsRestricted)
{
    DesignSpace train = paperTrainSpace();
    DesignSpace test = paperTestSpace();
    ASSERT_EQ(test.size(), train.size());
    // Table 2 narrows pipe depth, ROB, fractions and L2 latency.
    EXPECT_DOUBLE_EQ(test.param(kPipeDepth).minValue(), 9);
    EXPECT_DOUBLE_EQ(test.param(kPipeDepth).maxValue(), 22);
    EXPECT_DOUBLE_EQ(test.param(kRobSize).minValue(), 37);
    EXPECT_DOUBLE_EQ(test.param(kRobSize).maxValue(), 115);
    EXPECT_DOUBLE_EQ(test.param(kIqFrac).minValue(), 0.31);
    EXPECT_DOUBLE_EQ(test.param(kIqFrac).maxValue(), 0.69);
    EXPECT_DOUBLE_EQ(test.param(kL2Lat).minValue(), 7);
    EXPECT_DOUBLE_EQ(test.param(kL2Lat).maxValue(), 18);
    // Every test-space point lies within the training space.
    ppm::math::Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(train.contains(test.randomPoint(rng)));
}

} // namespace
