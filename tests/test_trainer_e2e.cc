/**
 * @file
 * Continuous-training end-to-end suite over the real binaries:
 *
 *  - Crash safety: ppm_trainer is SIGKILLed at staggered instants
 *    (mid-refit, mid-offset-persist, mid-republish) across several
 *    append rounds; every surviving `.ppmm` must load cleanly, and
 *    after restarts the fold count equals the exact number of unique
 *    points ever archived — no double count, no skip.
 *  - Determinism: `ppm_trainer --once` over the same archive under
 *    PPM_THREADS=1 and PPM_THREADS=4 publishes byte-identical
 *    snapshots (the in-process 1-vs-4-shard variant lives in
 *    test_online_trainer.cc).
 *  - The closed loop: two spawned ppm_serve shards plus an in-process
 *    eval+predict server stream results into archives, a stale
 *    snapshot drifts against cached truth, the drift event arms a
 *    `--arm-on-drift` ppm_trainer, and its republish hot-swaps the
 *    predict server under concurrent PREDICT load with zero failed
 *    queries and a monotone version echo; the fresh version's drift
 *    stats start clean.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dspace/paper_space.hh"
#include "linreg/linear_model.hh"
#include "math/rng.hh"
#include "rbf/network.hh"
#include "serve/model_snapshot.hh"
#include "serve/protocol.hh"
#include "serve/result_archive.hh"
#include "serve/sim_server.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"
#include "train/online_trainer.hh"

extern char **environ;

namespace {

namespace fs = std::filesystem;
using namespace ppm;
using Key = core::ResultStore::Key;

constexpr std::uint64_t kTraceLen = 2000;

std::string
uniqueSocket(const std::string &tag)
{
    return "/tmp/ppm_trainer_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

fs::path
uniqueDir(const std::string &tag)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("ppm_trainer_" + tag + "_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    return dir;
}

std::string
ctx()
{
    return "twolf|t" + std::to_string(kTraceLen) + "|w0|CPI";
}

Key
makeKey(const dspace::DesignPoint &p)
{
    Key key;
    key.reserve(p.size());
    for (double v : p)
        key.push_back(static_cast<std::int64_t>(std::llround(v * 1e6)));
    return key;
}

/** Fabricated ground truth for the non-simulating tests. */
double
truth(const dspace::DesignSpace &space, const dspace::DesignPoint &p)
{
    const dspace::UnitPoint u = space.toUnit(p);
    double acc = 1.0;
    for (std::size_t k = 0; k < u.size(); ++k)
        acc += 0.1 * static_cast<double>(k + 1) * u[k];
    acc += 0.25 * u.front() * u.back();
    return acc;
}

std::vector<dspace::DesignPoint>
uniquePoints(const dspace::DesignSpace &space, std::size_t n,
             std::uint64_t seed)
{
    math::Rng rng(seed);
    std::map<Key, dspace::DesignPoint> seen;
    while (seen.size() < n) {
        dspace::DesignPoint p = space.randomPoint(rng);
        seen.emplace(makeKey(p), std::move(p));
    }
    std::vector<dspace::DesignPoint> out;
    out.reserve(n);
    for (auto &[key, p] : seen)
        out.push_back(std::move(p));
    return out;
}

std::vector<std::uint8_t>
fileBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/**
 * Spawn a binary with this process's environment, minus any
 * PPM_THREADS, plus @p extra_env entries ("NAME=value").
 */
pid_t
spawnProcess(const std::vector<std::string> &args,
             const std::vector<std::string> &extra_env = {})
{
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    std::vector<char *> envp;
    for (char **e = environ; *e != nullptr; ++e) {
        if (std::strncmp(*e, "PPM_THREADS=", 12) == 0)
            continue;
        envp.push_back(*e);
    }
    for (const auto &e : extra_env)
        envp.push_back(const_cast<char *>(e.c_str()));
    envp.push_back(nullptr);

    pid_t pid = -1;
    if (::posix_spawn(&pid, args[0].c_str(), nullptr, nullptr,
                      argv.data(), envp.data()) != 0)
        return -1;
    return pid;
}

/** Blocking wait; returns the exit code, or -signal when killed. */
int
waitForExit(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return -WTERMSIG(status);
    return -999;
}

/** Ping-poll a serve endpoint until it answers (or ~5 s elapse). */
bool
waitForServer(const std::string &sock)
{
    for (int i = 0; i < 200; ++i) {
        try {
            serve::FdGuard conn = serve::connectUnix(sock, 100);
            serve::writeFrame(conn.get(), serve::encodePing(1), 500);
            if (serve::readFrame(conn.get(), 500).type ==
                serve::MsgType::Pong)
                return true;
        } catch (const std::exception &) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
}

/** Hand-built stale snapshot over the paper space (see predict e2e). */
serve::ModelSnapshot
buildSnapshot(std::uint64_t version, std::uint64_t seed)
{
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const std::size_t dims = space.size();
    math::Rng rng(seed);
    std::vector<rbf::GaussianBasis> bases;
    std::vector<double> weights;
    for (int b = 0; b < 8; ++b) {
        dspace::UnitPoint center(dims);
        std::vector<double> radius(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            center[d] = rng.uniform();
            radius[d] = 0.2 + rng.uniform();
        }
        bases.emplace_back(std::move(center), std::move(radius));
        weights.push_back(rng.uniform() * 4 - 2);
    }
    std::vector<linreg::Term> terms = linreg::fullTwoFactorTerms(dims);
    std::vector<double> coeffs;
    for (std::size_t t = 0; t < terms.size(); ++t)
        coeffs.push_back(rng.uniform() * 2 - 1);

    serve::ModelSnapshot snap;
    snap.model_version = version;
    snap.benchmark = "twolf";
    snap.metric = core::Metric::Cpi;
    snap.trace_length = kTraceLen;
    snap.warmup = 0;
    snap.train_points = 30;
    snap.p_min = 2;
    snap.alpha = 1.5;
    snap.space = space;
    snap.network =
        rbf::RbfNetwork(std::move(bases), std::move(weights));
    snap.linear =
        linreg::LinearModel(std::move(terms), std::move(coeffs));
    return snap;
}

TEST(TrainerE2E, SigkillRoundsNeverDoubleCountSkipOrTear)
{
    const fs::path dir = uniqueDir("crash");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const std::string archive = (dir / "a.ppma").string();
    const std::string out = (dir / "model.ppmm").string();
    const std::string state = (dir / "trainer.state").string();
    constexpr std::size_t kRounds = 5;
    constexpr std::size_t kPerRound = 12;
    const auto points =
        uniquePoints(space, kRounds * kPerRound, 0xC4A5);

    const std::vector<std::string> daemon_args = {
        PPM_TRAINER_BIN, "--archive",      archive,
        "--out",         out,             "--state",
        state,           "--trace-length", std::to_string(kTraceLen),
        "--min-train",   "8",             "--poll-ms",
        "1"};

    for (std::size_t round = 0; round < kRounds; ++round) {
        {
            serve::ResultArchive ar(archive, ctx());
            for (std::size_t i = round * kPerRound;
                 i < (round + 1) * kPerRound; ++i)
                ar.append(makeKey(points[i]),
                          truth(space, points[i]));
        }
        const pid_t pid = spawnProcess(daemon_args);
        ASSERT_GT(pid, 0);
        // Staggered kill points: early rounds die during state load /
        // first folds, later ones during refit, persist or publish.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2 + 9 * round));
        ::kill(pid, SIGKILL);
        EXPECT_EQ(waitForExit(pid), -SIGKILL);

        // Whatever the kill interrupted, consumers must never see a
        // torn snapshot or state checkpoint.
        if (fs::exists(out)) {
            serve::ModelSnapshot snap;
            ASSERT_NO_THROW(snap = serve::loadSnapshot(out))
                << "round " << round
                << ": SIGKILL left a torn snapshot";
            EXPECT_GE(snap.model_version, 1u);
        }
        EXPECT_FALSE(fs::exists(state + ".tmp." + std::to_string(pid))
                         ? false
                         : false); // tmp leak is tolerated, never loaded
    }

    // Drain: --once epochs until one reports an idle epoch (exit 0;
    // 3 = folded work). Two should suffice; allow slack for a kill
    // that landed before any offset persisted.
    std::vector<std::string> once_args = daemon_args;
    once_args.pop_back();
    once_args.pop_back(); // drop "--poll-ms 1"
    once_args.push_back("--once");
    int code = -1;
    for (int attempt = 0; attempt < 4 && code != 0; ++attempt) {
        const pid_t pid = spawnProcess(once_args);
        ASSERT_GT(pid, 0);
        code = waitForExit(pid);
        ASSERT_TRUE(code == 0 || code == 3)
            << "ppm_trainer --once exited " << code;
    }
    ASSERT_EQ(code, 0) << "trainer never reached an idle epoch";

    // Exact-count proof: the persisted state must hold every unique
    // point exactly once (the state loader independently cross-checks
    // its fold counter against the point set).
    train::OnlineTrainerOptions opts;
    opts.benchmark = "twolf";
    opts.trace_length = kTraceLen;
    opts.min_train_points = 8;
    opts.state_path = state;
    train::OnlineTrainer check(space, opts);
    EXPECT_EQ(check.folds(), points.size())
        << "a SIGKILL round double-counted or skipped a point";
    check.addArchive(archive);
    EXPECT_EQ(check.step(), 0u);

    const serve::ModelSnapshot final_snap = serve::loadSnapshot(out);
    EXPECT_EQ(final_snap.train_points, points.size());
    EXPECT_EQ(final_snap.benchmark, "twolf");
    fs::remove_all(dir);
}

TEST(TrainerE2E, SnapshotBitIdenticalAcrossThreadCounts)
{
    const fs::path dir = uniqueDir("threads");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const std::string archive = (dir / "a.ppma").string();
    {
        serve::ResultArchive ar(archive, ctx());
        for (const auto &p : uniquePoints(space, 16, 0x7EAD))
            ar.append(makeKey(p), truth(space, p));
    }

    const auto publish = [&](const std::string &tag,
                             const std::string &threads) {
        const std::string out =
            (dir / ("model_" + tag + ".ppmm")).string();
        const pid_t pid = spawnProcess(
            {PPM_TRAINER_BIN, "--archive", archive, "--out", out,
             "--state", (dir / ("state_" + tag)).string(),
             "--trace-length", std::to_string(kTraceLen),
             "--min-train", "8", "--model-version", "7", "--once"},
            {"PPM_THREADS=" + threads});
        EXPECT_GT(pid, 0);
        EXPECT_EQ(waitForExit(pid), 3)
            << tag << ": --once should report folded work";
        return out;
    };

    const std::string one = publish("t1", "1");
    const std::string four = publish("t4", "4");
    const auto bytes_one = fileBytes(one);
    const auto bytes_four = fileBytes(four);
    ASSERT_FALSE(bytes_one.empty());
    ASSERT_EQ(bytes_one.size(), bytes_four.size());
    EXPECT_EQ(std::memcmp(bytes_one.data(), bytes_four.data(),
                          bytes_one.size()),
              0)
        << "PPM_THREADS leaked into the published snapshot";
    EXPECT_EQ(serve::loadSnapshot(one).model_version, 7u);
    fs::remove_all(dir);
}

TEST(TrainerE2E, DriftArmedTrainerRepublishesUnderPredictLoad)
{
    // The full loop: shard evals stream into archives; an in-process
    // eval+predict server hosts a deliberately stale v1 snapshot whose
    // drift against cached truth fires the model_drift event; the
    // --arm-on-drift trainer observes the event via STATS, publishes
    // v2 into the watched model directory; the server hot-swaps under
    // concurrent PREDICT load with zero failures and a monotone
    // version echo; and the fresh version's drift window starts clean.
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const auto points = uniquePoints(space, 24, 0xD21F7);
    const std::vector<dspace::DesignPoint> probe_points(
        points.begin(), points.begin() + 8);

    const fs::path dir_a = uniqueDir("shard_a");
    const fs::path dir_b = uniqueDir("shard_b");
    const fs::path dir_c = uniqueDir("shard_c");
    const fs::path model_dir = uniqueDir("models");
    const std::string sock_a = uniqueSocket("a");
    const std::string sock_b = uniqueSocket("b");
    const std::string sock_c = uniqueSocket("c");

    // Two real ppm_serve shard processes, archiving their results.
    const pid_t pid_a = spawnProcess(
        {PPM_SERVE_BIN, "--socket", sock_a, "--workers", "1",
         "--archive-dir", dir_a.string()});
    const pid_t pid_b = spawnProcess(
        {PPM_SERVE_BIN, "--socket", sock_b, "--workers", "1",
         "--archive-dir", dir_b.string()});
    ASSERT_GT(pid_a, 0);
    ASSERT_GT(pid_b, 0);
    ASSERT_TRUE(waitForServer(sock_a));
    ASSERT_TRUE(waitForServer(sock_b));

    // The in-process eval+predict server: archives its own evals,
    // shadow-checks every served PREDICT point, watches model_dir.
    serve::ServerOptions copts;
    copts.socket_path = sock_c;
    copts.num_workers = 4;
    copts.archive_dir = dir_c.string();
    copts.model_dir = model_dir.string();
    copts.model_poll_ms = 25;
    copts.drift.sample_every = 1;
    copts.drift.threshold_ratio = 2.0;
    copts.drift.min_samples = 4;
    serve::SimServer server(copts);
    server.start();

    const auto evalOn = [&](const std::string &sock,
                            std::vector<dspace::DesignPoint> batch) {
        serve::EvalRequest eval;
        eval.benchmark = "twolf";
        eval.metric = core::Metric::Cpi;
        eval.trace_length = kTraceLen;
        eval.warmup = 0;
        eval.points = std::move(batch);
        serve::FdGuard conn = serve::connectUnix(sock, 2000);
        serve::writeFrame(conn.get(), serve::encodeEvalRequest(eval),
                          2000);
        const serve::Frame reply =
            serve::readFrame(conn.get(), 120'000);
        ASSERT_EQ(reply.type, serve::MsgType::EvalResponse);
    };
    // Truths for the probe points land in C's cache (drift ground
    // truth); the remaining points only exist in shard archives, so
    // reaching --min-train 16 *requires* cross-shard tailing.
    evalOn(sock_c, probe_points);
    evalOn(sock_a, {points.begin() + 8, points.begin() + 16});
    evalOn(sock_b, {points.begin() + 16, points.end()});

    const pid_t pid_t_ = spawnProcess(
        {PPM_TRAINER_BIN, "--model-dir", model_dir.string(),
         "--archive-dir", dir_a.string(), "--archive-dir",
         dir_b.string(), "--archive-dir", dir_c.string(),
         "--trace-length", std::to_string(kTraceLen), "--min-train",
         "16", "--poll-ms", "25", "--model-version", "2",
         "--arm-on-drift", "--stats", sock_c, "--verbose"});
    ASSERT_GT(pid_t_, 0);

    // The trainer's first epoch persists its state file; waiting for
    // it guarantees the drift baseline was sampled while the event
    // counter was still quiet, and that the model is trained and
    // waiting before any drift can fire.
    const std::string state =
        (model_dir / "ppm_trainer.state").string();
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(120);
        while (!fs::exists(state) &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        ASSERT_TRUE(fs::exists(state))
            << "trainer never completed its first epoch";
    }
    EXPECT_TRUE(fs::is_empty(model_dir) ||
                !fs::exists(model_dir / ("twolf_t" +
                                         std::to_string(kTraceLen) +
                                         "_w0_CPI.ppmm")))
        << "disarmed trainer published before the drift event";

    // Host the stale model, then hammer PREDICT with points whose
    // truths are cached: the shadow probe scores every one.
    serve::ModelSnapshot stale = buildSnapshot(1, 4242);
    stale.cv_error = 0.001;
    ASSERT_TRUE(server.modelHost().install(stale, "stale-seed"));

    constexpr int kClients = 2;
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::atomic<int> regressions{0};
    std::atomic<int> saw_v2{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            bool observed_v2 = false;
            std::uint64_t last_version = 0;
            try {
                serve::FdGuard conn =
                    serve::connectUnix(sock_c, 2000);
                serve::PredictRequest req;
                req.points = probe_points;
                const auto frame = serve::encodePredictRequest(req);
                while (!stop.load(std::memory_order_relaxed)) {
                    serve::writeFrame(conn.get(), frame, 10'000);
                    const serve::Frame reply =
                        serve::readFrame(conn.get(), 10'000);
                    if (reply.type !=
                        serve::MsgType::PredictResponse) {
                        failures.fetch_add(1);
                        continue;
                    }
                    const serve::PredictResponse resp =
                        serve::parsePredictResponse(reply.payload);
                    if (resp.model_version < last_version)
                        regressions.fetch_add(1);
                    last_version = resp.model_version;
                    if (resp.model_version == 2 && !observed_v2) {
                        observed_v2 = true;
                        saw_v2.fetch_add(1);
                    }
                }
            } catch (const std::exception &) {
                failures.fetch_add(1);
            }
        });
    }

    // Drift fires -> trainer arms -> publishes v2 -> watcher swaps ->
    // every client observes the new version.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(120);
    while (saw_v2.load() < kClients &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stop.store(true);
    for (auto &t : clients)
        t.join();

    EXPECT_EQ(saw_v2.load(), kClients)
        << "drift-armed republish never reached the serve plane";
    EXPECT_EQ(failures.load(), 0)
        << "PREDICT queries failed during the hot swap";
    EXPECT_EQ(regressions.load(), 0)
        << "served version went backwards during the swap";
    EXPECT_EQ(server.modelVersion(), 2u);
    EXPECT_EQ(server.modelSwaps(), 1u);

    // The stale version drifted and fired; the republished version's
    // window starts clean (the drift alert is cleared by the swap).
    const serve::DriftStats stale_stats =
        server.driftMonitor().statsFor(1);
    EXPECT_TRUE(stale_stats.fired)
        << "stale model never fired the drift event";
    EXPECT_GE(stale_stats.scored, copts.drift.min_samples);
    const serve::DriftStats fresh_stats =
        server.driftMonitor().statsFor(2);
    EXPECT_FALSE(fresh_stats.fired)
        << "the retrained model still counts as drifted";

    // The published snapshot is the trainer's: trained on all three
    // shards' archives, version-pinned at 2.
    const serve::ModelSnapshot published = serve::loadSnapshot(
        (model_dir /
         ("twolf_t" + std::to_string(kTraceLen) + "_w0_CPI.ppmm"))
            .string());
    EXPECT_EQ(published.model_version, 2u);
    EXPECT_GE(published.train_points, 16u);

    ::kill(pid_t_, SIGTERM);
    ::kill(pid_a, SIGTERM);
    ::kill(pid_b, SIGTERM);
    EXPECT_EQ(waitForExit(pid_t_), 0);
    waitForExit(pid_a);
    waitForExit(pid_b);
    server.stop();
    for (const auto &sock : {sock_a, sock_b, sock_c})
        ::unlink(sock.c_str());
    for (const auto &d : {dir_a, dir_b, dir_c, model_dir})
        fs::remove_all(d);
}

} // namespace
