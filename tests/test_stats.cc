/**
 * @file
 * Unit tests for summary statistics and the error metrics the paper
 * reports (mean/std/max absolute percentage CPI error).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.hh"

namespace {

using namespace ppm::math;

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({5}), 5.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, VarianceIsSampleVariance)
{
    // Var of {2,4,4,4,5,5,7,9} about mean 5: ss=32, n-1=7.
    EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(variance({3}), 0.0);
    EXPECT_DOUBLE_EQ(variance({}), 0.0);
}

TEST(Stats, StddevIsRootOfVariance)
{
    const std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_NEAR(stddev(v), std::sqrt(variance(v)), 1e-14);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minValue({3, -1, 2}), -1.0);
    EXPECT_DOUBLE_EQ(maxValue({3, -1, 2}), 3.0);
    EXPECT_DOUBLE_EQ(minValue({}), 0.0);
    EXPECT_DOUBLE_EQ(maxValue({}), 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> v{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
    EXPECT_DOUBLE_EQ(percentile({7}, 50), 7.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({40, 10, 30, 20}, 50), 25.0);
}

TEST(Stats, SummarizeAllFields)
{
    Summary s = summarize({1, 2, 3, 4, 5});
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingle)
{
    Summary e = summarize({});
    EXPECT_EQ(e.count, 0u);
    EXPECT_DOUBLE_EQ(e.mean, 0.0);
    Summary one = summarize({4.0});
    EXPECT_EQ(one.count, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 4.0);
    EXPECT_DOUBLE_EQ(one.stddev, 0.0);
    EXPECT_DOUBLE_EQ(one.min, 4.0);
    EXPECT_DOUBLE_EQ(one.max, 4.0);
}

TEST(ErrorMetrics, AbsolutePercentageErrors)
{
    auto errs = absolutePercentageErrors({2.0, 4.0}, {2.2, 3.0});
    ASSERT_EQ(errs.size(), 2u);
    EXPECT_NEAR(errs[0], 10.0, 1e-9);
    EXPECT_NEAR(errs[1], 25.0, 1e-9);
}

TEST(ErrorMetrics, ZeroActualContributesZero)
{
    auto errs = absolutePercentageErrors({0.0, 1.0}, {5.0, 1.1});
    EXPECT_DOUBLE_EQ(errs[0], 0.0);
    EXPECT_NEAR(errs[1], 10.0, 1e-9);
}

TEST(ErrorMetrics, MapeIsMeanOfErrors)
{
    EXPECT_NEAR(meanAbsolutePercentageError({2.0, 4.0}, {2.2, 3.0}),
                17.5, 1e-9);
}

TEST(ErrorMetrics, PerfectPredictionIsZeroError)
{
    const std::vector<double> v{1.5, 2.5, 3.5};
    EXPECT_DOUBLE_EQ(meanAbsolutePercentageError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(rmsError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(rSquared(v, v), 1.0);
}

TEST(ErrorMetrics, RmsError)
{
    EXPECT_NEAR(rmsError({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(rmsError({}, {}), 0.0);
}

TEST(ErrorMetrics, RSquaredKnownValue)
{
    // Predicting the mean gives R^2 = 0.
    const std::vector<double> actual{1, 2, 3};
    const std::vector<double> mean_pred{2, 2, 2};
    EXPECT_NEAR(rSquared(actual, mean_pred), 0.0, 1e-12);
}

TEST(ErrorMetrics, RSquaredConstantActual)
{
    EXPECT_DOUBLE_EQ(rSquared({2, 2}, {2, 2}), 1.0);
    EXPECT_DOUBLE_EQ(rSquared({2, 2}, {3, 1}), 0.0);
}

TEST(ErrorMetrics, ErrorsAreSymmetricInMagnitudeOnly)
{
    // Over- and under-prediction by the same ratio give the same
    // absolute percentage error.
    auto over = absolutePercentageErrors({2.0}, {2.4});
    auto under = absolutePercentageErrors({2.0}, {1.6});
    EXPECT_NEAR(over[0], under[0], 1e-12);
}

} // namespace
