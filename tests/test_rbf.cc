/**
 * @file
 * Unit tests for the Gaussian basis, RBF networks, the rbf_rt
 * construction from regression trees, and the (p_min, alpha) trainer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "math/rng.hh"
#include "rbf/rbf_rt.hh"
#include "rbf/trainer.hh"
#include "tree/regression_tree.hh"

namespace {

using namespace ppm;
using namespace ppm::rbf;

/** Disambiguates predict() calls on brace-initialized points. */
double
at(const RbfNetwork &net, std::initializer_list<double> v)
{
    return net.predict(dspace::UnitPoint(v));
}

TEST(GaussianBasis, PeakAtCenter)
{
    GaussianBasis h({0.3, 0.7}, {0.5, 0.5});
    EXPECT_DOUBLE_EQ(h.evaluate({0.3, 0.7}), 1.0);
}

TEST(GaussianBasis, Eq2Form)
{
    // h(x) = exp(-sum (x_k - c_k)^2 / r_k^2)
    GaussianBasis h({0.0, 0.0}, {1.0, 2.0});
    const double expected = std::exp(-(0.25 / 1.0 + 1.0 / 4.0));
    EXPECT_NEAR(h.evaluate({0.5, 1.0}), expected, 1e-12);
}

TEST(GaussianBasis, DecaysWithDistance)
{
    GaussianBasis h({0.5}, {0.2});
    const double near = h.evaluate({0.55});
    const double far = h.evaluate({0.9});
    EXPECT_GT(near, far);
    EXPECT_GT(far, 0.0);
}

TEST(GaussianBasis, AnisotropicRadii)
{
    // Larger radius in dim 0 means slower decay along dim 0.
    GaussianBasis h({0.5, 0.5}, {1.0, 0.1});
    EXPECT_GT(h.evaluate({0.8, 0.5}), h.evaluate({0.5, 0.8}));
}

TEST(GaussianBasis, RejectsInvalidRadiiUnconditionally)
{
    // Throws even in release builds (this was an assert, i.e. a
    // release-mode validation hole: 1/r^2 would poison predictions
    // with inf/NaN).
    const dspace::UnitPoint c{0.5, 0.5};
    EXPECT_THROW(GaussianBasis(c, {0.0, 0.5}), std::invalid_argument);
    EXPECT_THROW(GaussianBasis(c, {-0.1, 0.5}), std::invalid_argument);
    EXPECT_THROW(GaussianBasis(c, {0.5, std::nan("")}),
                 std::invalid_argument);
    EXPECT_THROW(GaussianBasis(c, {0.5, INFINITY}),
                 std::invalid_argument);
}

TEST(GaussianBasis, RejectsMalformedCenter)
{
    EXPECT_THROW(GaussianBasis({}, {}), std::invalid_argument);
    EXPECT_THROW(GaussianBasis({0.5, 0.5}, {0.5}),
                 std::invalid_argument);
    EXPECT_THROW(GaussianBasis({0.5, std::nan("")}, {0.5, 0.5}),
                 std::invalid_argument);
}

TEST(RbfNetwork, EmptyNetworkPredictThrowsTyped)
{
    // dimensions() == 0 for a default network while predict() used to
    // hit an assert-only path: in release it read junk. Now typed.
    const RbfNetwork net;
    EXPECT_EQ(net.dimensions(), 0u);
    EXPECT_TRUE(net.empty());
    EXPECT_THROW(at(net, {0.5}), std::logic_error);
    EXPECT_THROW(net.predict(std::vector<dspace::UnitPoint>{{0.5}}),
                 std::logic_error);
}

TEST(RbfNetwork, DimensionMismatchThrowsTyped)
{
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.5, 0.5},
                       std::vector<double>{0.5, 0.5});
    const RbfNetwork net(bases, {1.0});
    EXPECT_THROW(at(net, {0.5}), std::invalid_argument);
    EXPECT_THROW(at(net, {0.5, 0.5, 0.5}), std::invalid_argument);
    EXPECT_THROW(
        net.predict(std::vector<dspace::UnitPoint>{{0.5, 0.5}, {0.5}}),
        std::invalid_argument);
}

TEST(RbfNetwork, ConstructorValidatesShape)
{
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.5},
                       std::vector<double>{0.5});
    EXPECT_THROW(RbfNetwork({}, {}), std::invalid_argument);
    EXPECT_THROW(RbfNetwork(bases, {1.0, 2.0}),
                 std::invalid_argument);
    std::vector<GaussianBasis> mixed = bases;
    mixed.emplace_back(dspace::UnitPoint{0.5, 0.5},
                       std::vector<double>{0.5, 0.5});
    EXPECT_THROW(RbfNetwork(mixed, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(RbfNetwork, SingleBasisPrediction)
{
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.5}, std::vector<double>{0.3});
    RbfNetwork net(std::move(bases), {2.0});
    EXPECT_DOUBLE_EQ(at(net, {0.5}), 2.0);
    EXPECT_NEAR(at(net, {0.8}), 2.0 * std::exp(-1.0), 1e-12);
}

TEST(RbfNetwork, SumsWeightedBases)
{
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.0}, std::vector<double>{1.0});
    bases.emplace_back(dspace::UnitPoint{1.0}, std::vector<double>{1.0});
    RbfNetwork net(std::move(bases), {3.0, -1.0});
    const double at0 = 3.0 * 1.0 - 1.0 * std::exp(-1.0);
    EXPECT_NEAR(at(net, {0.0}), at0, 1e-12);
    EXPECT_EQ(net.numBases(), 2u);
    EXPECT_EQ(net.dimensions(), 1u);
}

TEST(RbfNetwork, BatchMatchesScalar)
{
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.4, 0.6},
                       std::vector<double>{0.5, 0.5});
    RbfNetwork net(std::move(bases), {1.7});
    std::vector<dspace::UnitPoint> xs{{0, 0}, {0.4, 0.6}, {1, 1}};
    auto batch = net.predict(xs);
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], net.predict(xs[i]));
}

TEST(RbfNetwork, DesignMatrixEntries)
{
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.0}, std::vector<double>{1.0});
    bases.emplace_back(dspace::UnitPoint{1.0}, std::vector<double>{1.0});
    std::vector<dspace::UnitPoint> xs{{0.0}, {1.0}};
    auto h = designMatrix(bases, xs);
    EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
    EXPECT_NEAR(h(0, 1), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(h(1, 0), std::exp(-1.0), 1e-12);
    EXPECT_DOUBLE_EQ(h(1, 1), 1.0);
}

TEST(RbfNetwork, FitWeightsInterpolatesExactly)
{
    // Two bases, two points: exact interpolation.
    std::vector<GaussianBasis> bases;
    bases.emplace_back(dspace::UnitPoint{0.0}, std::vector<double>{0.7});
    bases.emplace_back(dspace::UnitPoint{1.0}, std::vector<double>{0.7});
    std::vector<dspace::UnitPoint> xs{{0.0}, {1.0}};
    std::vector<double> ys{2.0, 5.0};
    RbfNetwork net = fitWeights(std::move(bases), xs, ys);
    EXPECT_NEAR(at(net, {0.0}), 2.0, 1e-9);
    EXPECT_NEAR(at(net, {1.0}), 5.0, 1e-9);
}

// --- rbf_rt construction ----------------------------------------------

/** Smooth 2-D test function on the unit square. */
double
testFunction(const dspace::UnitPoint &x)
{
    return 1.0 + std::sin(3.0 * x[0]) + 0.5 * x[1] * x[1];
}

struct TrainingData
{
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
};

TrainingData
makeData(std::size_t n, std::uint64_t seed)
{
    math::Rng rng(seed);
    TrainingData d;
    for (std::size_t i = 0; i < n; ++i) {
        d.xs.push_back({rng.uniform(), rng.uniform()});
        d.ys.push_back(testFunction(d.xs.back()));
    }
    return d;
}

TEST(RbfRt, CandidateBasesMatchTreeNodes)
{
    auto d = makeData(40, 1);
    tree::RegressionTree t(d.xs, d.ys, 4);
    auto nodes = t.nodes();
    auto bases = candidateBases(nodes, 2.0, 1e-3);
    ASSERT_EQ(bases.size(), nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        EXPECT_EQ(bases[i].center(), nodes[i].center);
        for (std::size_t k = 0; k < 2; ++k)
            EXPECT_NEAR(bases[i].radius()[k],
                        std::max(2.0 * nodes[i].size[k], 1e-3), 1e-12);
    }
}

TEST(RbfRt, RadiusFloorApplied)
{
    tree::NodeInfo node;
    node.center = {0.5};
    node.size = {0.0}; // degenerate region
    auto bases = candidateBases({node}, 5.0, 1e-2);
    EXPECT_DOUBLE_EQ(bases[0].radius()[0], 1e-2);
}

TEST(RbfRt, FitsSmoothFunctionWell)
{
    auto train = makeData(120, 2);
    tree::RegressionTree t(train.xs, train.ys, 2);
    RbfRtOptions opts;
    opts.alpha = 6.0;
    auto result = buildRbfFromTree(t, train.xs, train.ys, opts);
    ASSERT_FALSE(result.network.empty());

    auto test = makeData(200, 99);
    double max_err = 0;
    for (std::size_t i = 0; i < test.xs.size(); ++i) {
        const double pred = result.network.predict(test.xs[i]);
        max_err = std::max(max_err,
                           std::fabs(pred - test.ys[i]) /
                               std::fabs(test.ys[i]));
    }
    EXPECT_LT(max_err, 0.25);
    EXPECT_GT(result.num_candidates, 0u);
    EXPECT_LT(result.network.numBases(), train.xs.size());
}

TEST(RbfRt, SelectionKeepsFarFewerCentersThanSamples)
{
    // Paper Sec 4: centers are typically much less than half the
    // sample size.
    auto train = makeData(100, 3);
    tree::RegressionTree t(train.xs, train.ys, 1);
    RbfRtOptions opts;
    opts.alpha = 7.0;
    auto result = buildRbfFromTree(t, train.xs, train.ys, opts);
    EXPECT_LE(result.network.numBases(), train.xs.size() / 2);
}

TEST(RbfRt, GreedySelectionAlsoWorks)
{
    auto train = makeData(60, 4);
    tree::RegressionTree t(train.xs, train.ys, 4);
    RbfRtOptions opts;
    opts.alpha = 5.0;
    opts.selection = Selection::GreedyForward;
    auto result = buildRbfFromTree(t, train.xs, train.ys, opts);
    ASSERT_FALSE(result.network.empty());
    auto test = makeData(100, 98);
    double mean_err = 0;
    for (std::size_t i = 0; i < test.xs.size(); ++i)
        mean_err += std::fabs(result.network.predict(test.xs[i]) -
                              test.ys[i]);
    EXPECT_LT(mean_err / test.xs.size(), 0.3);
}

TEST(RbfRt, MaxCentersRespected)
{
    auto train = makeData(80, 5);
    tree::RegressionTree t(train.xs, train.ys, 1);
    RbfRtOptions opts;
    opts.alpha = 6.0;
    opts.max_centers = 5;
    auto result = buildRbfFromTree(t, train.xs, train.ys, opts);
    EXPECT_LE(result.network.numBases(), 5u);
}

TEST(RbfRt, CriterionValueFinite)
{
    auto train = makeData(50, 6);
    tree::RegressionTree t(train.xs, train.ys, 2);
    auto result = buildRbfFromTree(t, train.xs, train.ys, {});
    EXPECT_TRUE(std::isfinite(result.criterion_value));
    EXPECT_GE(result.train_sse, 0.0);
}

TEST(RbfRt, SelectionNames)
{
    EXPECT_EQ(selectionName(Selection::TreeOrdered), "tree-ordered");
    EXPECT_EQ(selectionName(Selection::GreedyForward),
              "greedy-forward");
}

// --- trainer -----------------------------------------------------------

TEST(Trainer, PicksFromGrids)
{
    auto train = makeData(60, 7);
    TrainerOptions opts;
    opts.p_min_grid = {1, 3};
    opts.alpha_grid = {4, 8};
    TrainedRbf model = trainRbfModel(train.xs, train.ys, opts);
    EXPECT_TRUE(model.p_min == 1 || model.p_min == 3);
    EXPECT_TRUE(model.alpha == 4 || model.alpha == 8);
    EXPECT_GT(model.num_centers, 0u);
    EXPECT_EQ(model.num_centers, model.network.numBases());
}

TEST(Trainer, ChoosesLowestCriterion)
{
    auto train = makeData(70, 8);
    TrainerOptions grid;
    grid.p_min_grid = {1, 2, 4};
    grid.alpha_grid = {2, 6, 10};
    TrainedRbf best = trainRbfModel(train.xs, train.ys, grid);
    // Re-running any single grid point cannot beat the chosen one.
    for (int p_min : grid.p_min_grid) {
        for (double alpha : grid.alpha_grid) {
            TrainerOptions single;
            single.p_min_grid = {p_min};
            single.alpha_grid = {alpha};
            TrainedRbf m = trainRbfModel(train.xs, train.ys, single);
            EXPECT_GE(m.criterion_value, best.criterion_value - 1e-9);
        }
    }
}

TEST(Trainer, GeneralizesOnHeldOutData)
{
    auto train = makeData(100, 9);
    TrainedRbf model = trainRbfModel(train.xs, train.ys, {});
    auto test = makeData(200, 1000);
    double mean_pct = 0;
    for (std::size_t i = 0; i < test.xs.size(); ++i)
        mean_pct += 100.0 *
            std::fabs(model.network.predict(test.xs[i]) - test.ys[i]) /
            std::fabs(test.ys[i]);
    EXPECT_LT(mean_pct / test.xs.size(), 6.0);
}

TEST(Trainer, TinySampleStillYieldsModel)
{
    auto train = makeData(10, 10);
    TrainedRbf model = trainRbfModel(train.xs, train.ys, {});
    EXPECT_FALSE(model.network.empty());
}

TEST(Trainer, BicCriterionSelectsSmallerModels)
{
    auto train = makeData(90, 11);
    TrainerOptions aic_opts;
    aic_opts.criterion = Criterion::AICc;
    TrainerOptions bic_opts;
    bic_opts.criterion = Criterion::BIC;
    TrainedRbf aic_model = trainRbfModel(train.xs, train.ys, aic_opts);
    TrainedRbf bic_model = trainRbfModel(train.xs, train.ys, bic_opts);
    // BIC penalizes parameters more heavily for n >= 8.
    EXPECT_LE(bic_model.num_centers, aic_model.num_centers + 2);
}

} // namespace
