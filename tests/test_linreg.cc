/**
 * @file
 * Unit tests for the linear baseline: term construction, fitting, and
 * AIC backward elimination (paper Sec 4.2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linreg/model_selection.hh"
#include "math/rng.hh"

namespace {

using namespace ppm;
using namespace ppm::linreg;

TEST(Term, Values)
{
    dspace::UnitPoint x{0.5, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(Term{}.value(x), 1.0);
    EXPECT_DOUBLE_EQ((Term{1, Term::kNone}).value(x), 2.0);
    EXPECT_DOUBLE_EQ((Term{0, 2}).value(x), 1.5);
}

TEST(Term, Kinds)
{
    EXPECT_TRUE(Term{}.isIntercept());
    EXPECT_TRUE((Term{2, Term::kNone}).isMainEffect());
    EXPECT_TRUE((Term{0, 1}).isInteraction());
    EXPECT_FALSE((Term{0, 1}).isMainEffect());
}

TEST(Term, ToString)
{
    EXPECT_EQ(Term{}.toString(), "1");
    EXPECT_EQ((Term{3, Term::kNone}).toString(), "x3");
    EXPECT_EQ((Term{1, 4}).toString(), "x1*x4");
}

TEST(FullTwoFactorTerms, CountFormula)
{
    // 1 + n + n(n-1)/2 terms.
    for (std::size_t n : {2u, 5u, 9u}) {
        auto terms = fullTwoFactorTerms(n);
        EXPECT_EQ(terms.size(), 1 + n + n * (n - 1) / 2);
        EXPECT_TRUE(terms.front().isIntercept());
    }
}

TEST(FullTwoFactorTerms, NoDuplicateInteractions)
{
    auto terms = fullTwoFactorTerms(4);
    for (std::size_t a = 0; a < terms.size(); ++a)
        for (std::size_t b = a + 1; b < terms.size(); ++b)
            EXPECT_FALSE(terms[a] == terms[b]);
}

TEST(LinearModel, RecoversExactLinearFunction)
{
    math::Rng rng(1);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 40; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(2.0 + 3.0 * xs.back()[0] - 1.0 * xs.back()[1]);
    }
    LinearModel m(fullTwoFactorTerms(2), xs, ys);
    EXPECT_NEAR(m.trainSse(), 0.0, 1e-15);
    EXPECT_NEAR(m.predict({0.5, 0.5}), 2.0 + 1.5 - 0.5, 1e-9);
}

TEST(LinearModel, RecoversInteraction)
{
    math::Rng rng(2);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 40; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(1.0 + 4.0 * xs.back()[0] * xs.back()[1]);
    }
    LinearModel m(fullTwoFactorTerms(2), xs, ys);
    EXPECT_NEAR(m.predict({0.5, 0.8}), 1.0 + 4.0 * 0.4, 1e-8);
}

TEST(LinearModel, BatchPrediction)
{
    math::Rng rng(3);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(xs.back()[0]);
    }
    LinearModel m(fullTwoFactorTerms(2), xs, ys);
    auto preds = m.predict(xs);
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_DOUBLE_EQ(preds[i], m.predict(xs[i]));
}

TEST(LinearModel, CannotFitQuadraticExactly)
{
    // The defining limitation vs RBF networks (paper Sec 1): pure
    // curvature in one variable is invisible to main effects and
    // cross terms.
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 30; ++i) {
        const double x = i / 29.0;
        xs.push_back({x, 0.5});
        ys.push_back((x - 0.5) * (x - 0.5));
    }
    LinearModel m(fullTwoFactorTerms(2), xs, ys);
    EXPECT_GT(m.trainSse(), 1e-3);
}

TEST(LinearAic, Formula)
{
    const double expected = 50.0 * std::log(2.0 / 50.0) + 2.0 * 7.0;
    EXPECT_NEAR(linearAic(50, 7, 2.0), expected, 1e-9);
}

TEST(LinearAic, InfiniteWhenSaturated)
{
    EXPECT_TRUE(std::isinf(linearAic(10, 10, 1.0)));
}

TEST(Selection, DropsIrrelevantTerms)
{
    // Response uses only x0; elimination should drop most of the
    // other terms.
    math::Rng rng(4);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 80; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(1.0 + 2.0 * xs.back()[0] +
                     0.01 * rng.gaussian());
    }
    auto sel = fitSelectedLinearModel(xs, ys);
    const std::size_t full = fullTwoFactorTerms(3).size();
    EXPECT_LT(sel.model.numTerms(), full);
    EXPECT_GT(sel.eliminated, 0u);
    // Still predicts well.
    EXPECT_NEAR(sel.model.predict({0.5, 0.1, 0.9}), 2.0, 0.1);
}

TEST(Selection, KeepsIntercept)
{
    math::Rng rng(5);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(7.0); // constant response
    }
    auto sel = fitSelectedLinearModel(xs, ys);
    bool has_intercept = false;
    for (const auto &t : sel.model.terms())
        has_intercept |= t.isIntercept();
    EXPECT_TRUE(has_intercept);
    EXPECT_NEAR(sel.model.predict({0.3, 0.3}), 7.0, 1e-6);
}

TEST(Selection, SmallSampleTruncatesTerms)
{
    // 9-dim full model has 46 terms; with 20 samples the selector
    // must fit a reduced model rather than a singular one.
    math::Rng rng(6);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 20; ++i) {
        dspace::UnitPoint x(9);
        for (auto &v : x)
            v = rng.uniform();
        xs.push_back(x);
        ys.push_back(x[0] + 0.5 * x[3]);
    }
    auto sel = fitSelectedLinearModel(xs, ys);
    EXPECT_LE(sel.model.numTerms(), 15u);
    EXPECT_FALSE(sel.model.empty());
}

TEST(Selection, AicReportedMatchesModel)
{
    math::Rng rng(7);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 60; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(xs.back()[0] + rng.gaussian(0, 0.05));
    }
    auto sel = fitSelectedLinearModel(xs, ys);
    const double recomputed =
        linearAic(xs.size(), sel.model.numTerms(), sel.model.trainSse());
    EXPECT_NEAR(sel.aic, recomputed, 1e-6);
}

} // namespace
