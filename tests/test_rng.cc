/**
 * @file
 * Unit tests for the deterministic random number generator, including
 * distributional sanity checks (these use fixed seeds, so they are
 * exact regressions, not flaky statistical tests).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "math/rng.hh"

namespace {

using ppm::math::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(6);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 2.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 2.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(8);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(std::uint64_t(10));
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit in 1000 draws
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(std::int64_t(-2), std::int64_t(2));
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        hit_lo |= v == -2;
        hit_hi |= v == 2;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformIntSingleValue)
{
    Rng rng(10);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(std::int64_t(5), std::int64_t(5)), 5);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    const int n = 200000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(12);
    double acc = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        acc += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(acc / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double acc = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.exponential(4.0);
    EXPECT_NEAR(acc / n, 4.0, 0.1);
}

TEST(Rng, GeometricMeanAndSupport)
{
    Rng rng(14);
    const double p = 0.25;
    double acc = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto k = rng.geometric(p);
        EXPECT_GE(k, 1u);
        acc += static_cast<double>(k);
    }
    EXPECT_NEAR(acc / n, 1.0 / p, 0.1);
}

TEST(Rng, GeometricCertainSuccess)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(16);
    std::vector<double> w{1, 0, 3};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.25, 0.02);
    EXPECT_NEAR(counts[2] / double(n), 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(18);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    rng.shuffle(v);
    int moved = 0;
    for (int i = 0; i < 100; ++i)
        moved += v[i] != i;
    EXPECT_GT(moved, 50);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(20);
    Rng child = a.split();
    // Parent and child streams should not be identical.
    Rng b(20);
    (void)b.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 2);
}

} // namespace
