/**
 * @file
 * Unit tests for the L2 discrepancy measures, including analytic
 * values and the orderings the paper relies on (LHS beats random;
 * discrepancy falls with sample size — Fig 2).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dspace/design_space.hh"
#include "math/rng.hh"
#include "sampling/discrepancy.hh"
#include "sampling/latin_hypercube.hh"
#include "sampling/sample_gen.hh"

namespace {

using namespace ppm;
using namespace ppm::sampling;

std::vector<dspace::UnitPoint>
randomUnitPoints(std::size_t n, std::size_t d, std::uint64_t seed)
{
    math::Rng rng(seed);
    std::vector<dspace::UnitPoint> pts(n, dspace::UnitPoint(d));
    for (auto &p : pts)
        for (auto &v : p)
            v = rng.uniform();
    return pts;
}

dspace::DesignSpace
unitSpace(std::size_t dims)
{
    dspace::DesignSpace s;
    for (std::size_t i = 0; i < dims; ++i)
        s.add(dspace::Parameter("p" + std::to_string(i), 0, 1,
                                dspace::kSampleSizeLevels,
                                dspace::Transform::Linear, false));
    return s;
}

TEST(StarDiscrepancy, SinglePointAnalytic1D)
{
    // Warnock in 1-D for one point x:
    // D*^2 = 1/3 - (1 - x^2) + (1 - x).
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const double expected =
            std::sqrt(1.0 / 3.0 - (1.0 - x * x) + (1.0 - x));
        EXPECT_NEAR(starL2Discrepancy({{x}}), expected, 1e-12) << x;
    }
}

TEST(StarDiscrepancy, MidpointIsBestSinglePoint1D)
{
    // For one point in 1-D, x = 0.5 minimizes the star discrepancy.
    const double mid = starL2Discrepancy({{0.5}});
    for (double x : {0.1, 0.3, 0.7, 0.9})
        EXPECT_LT(mid, starL2Discrepancy({{x}}));
}

TEST(CenteredDiscrepancy, SinglePointAnalytic1D)
{
    // CD^2 = 13/12 - 2(1 + z/2 - z^2/2) + (1 + z) with z = |x - 1/2|.
    for (double x : {0.0, 0.25, 0.5, 1.0}) {
        const double z = std::fabs(x - 0.5);
        const double expected = std::sqrt(
            13.0 / 12.0 - 2.0 * (1.0 + 0.5 * z - 0.5 * z * z) +
            (1.0 + z));
        EXPECT_NEAR(centeredL2Discrepancy({{x}}), expected, 1e-12) << x;
    }
}

TEST(CenteredDiscrepancy, ReflectionInvariance)
{
    // The centered discrepancy is invariant under x -> 1 - x.
    auto pts = randomUnitPoints(20, 3, 5);
    auto reflected = pts;
    for (auto &p : reflected)
        for (auto &v : p)
            v = 1.0 - v;
    EXPECT_NEAR(centeredL2Discrepancy(pts),
                centeredL2Discrepancy(reflected), 1e-10);
}

TEST(CenteredDiscrepancy, PermutationInvariance)
{
    auto pts = randomUnitPoints(15, 2, 6);
    auto shuffled = pts;
    std::swap(shuffled[0], shuffled[7]);
    std::swap(shuffled[3], shuffled[12]);
    EXPECT_NEAR(centeredL2Discrepancy(pts),
                centeredL2Discrepancy(shuffled), 1e-12);
}

TEST(CenteredDiscrepancy, UniformGridBeatsClusteredPoints)
{
    // 1-D: evenly spread points vs all points clustered at 0.1.
    std::vector<dspace::UnitPoint> grid, cluster;
    const int n = 10;
    for (int i = 0; i < n; ++i) {
        grid.push_back({(i + 0.5) / n});
        cluster.push_back({0.1 + 0.001 * i});
    }
    EXPECT_LT(centeredL2Discrepancy(grid),
              centeredL2Discrepancy(cluster));
    EXPECT_LT(starL2Discrepancy(grid), starL2Discrepancy(cluster));
}

TEST(CenteredDiscrepancy, LhsBeatsRandomOnAverage)
{
    // The motivation for LHS (paper Sec 2.2): better space filling
    // than simple random sampling. Compare averages over several
    // draws in the paper's 9-dimensional setting.
    auto space = unitSpace(9);
    math::Rng rng(7);
    double lhs_total = 0, rnd_total = 0;
    const int reps = 10;
    for (int r = 0; r < reps; ++r) {
        auto lhs = latinHypercubeSample(space, 40, rng);
        lhs_total += centeredL2Discrepancy(toUnitSample(space, lhs));
        auto rnd = randomUnitPoints(40, 9, 1000 + r);
        rnd_total += centeredL2Discrepancy(rnd);
    }
    EXPECT_LT(lhs_total / reps, rnd_total / reps);
}

TEST(CenteredDiscrepancy, DecreasesWithSampleSize)
{
    // The Fig 2 trend: best-of-N discrepancy falls as samples grow.
    auto space = unitSpace(9);
    math::Rng rng(8);
    double prev = 1e9;
    for (int size : {10, 30, 90, 270}) {
        auto best = bestLatinHypercube(space, size, 10, rng);
        EXPECT_LT(best.discrepancy, prev) << "size " << size;
        prev = best.discrepancy;
    }
}

TEST(Discrepancy, BothMetricsPositive)
{
    auto pts = randomUnitPoints(25, 4, 9);
    EXPECT_GT(starL2Discrepancy(pts), 0.0);
    EXPECT_GT(centeredL2Discrepancy(pts), 0.0);
}

TEST(Discrepancy, DimensionalityGrowsDiscrepancy)
{
    // The same point count fills higher-dimensional space worse.
    const double d2 = centeredL2Discrepancy(randomUnitPoints(30, 2, 10));
    const double d9 = centeredL2Discrepancy(randomUnitPoints(30, 9, 10));
    EXPECT_LT(d2, d9);
}

} // namespace
