/**
 * @file
 * Parallel-vs-serial equivalence suite: the headline guarantee of the
 * parallel experiment engine is that every batched result — oracle
 * batches, best-of-N LHS selection, and the trained RBF network — is
 * BIT-identical between PPM_THREADS=1 and PPM_THREADS=4, because all
 * randomness derives from (base seed, item index) streams and all
 * reductions run serially in index order.
 *
 * EXPECT_EQ on doubles below is deliberate: equality must be exact,
 * not within a tolerance.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/model_builder.hh"
#include "core/oracle.hh"
#include "dspace/paper_space.hh"
#include "rbf/trainer.hh"
#include "sampling/sample_gen.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"
#include "util/thread_pool.hh"

namespace {

using namespace ppm;

constexpr std::size_t kTraceLen = 12000;
constexpr int kSampleSize = 30;
constexpr int kLhsCandidates = 8;
constexpr std::uint64_t kSeed = 42;

/** Everything the pipeline produces that must be thread-invariant. */
struct PipelineResult
{
    std::vector<dspace::DesignPoint> lhs_points;
    double lhs_discrepancy = 0.0;
    std::vector<double> responses;
    rbf::TrainedRbf trained;
    std::vector<double> predictions;
    std::uint64_t simulations = 0;
};

/**
 * Run sample selection -> batched simulation -> RBF training ->
 * prediction for one benchmark with the given pool size.
 */
PipelineResult
runPipeline(const std::string &benchmark, unsigned threads)
{
    util::setGlobalThreads(threads);
    auto space = dspace::paperTrainSpace();
    const auto tr = trace::generateTrace(
        trace::profileByName(benchmark), kTraceLen);
    sim::SimOptions sim_opts;
    sim_opts.warmup_instructions = 2000;
    core::SimulatorOracle oracle(space, tr, sim_opts);

    PipelineResult out;
    math::Rng rng(kSeed);
    auto best = sampling::bestLatinHypercube(
        space, kSampleSize, kLhsCandidates, rng);
    out.lhs_points = best.points;
    out.lhs_discrepancy = best.discrepancy;

    out.responses = oracle.evaluateAll(out.lhs_points);
    out.simulations = oracle.evaluations();

    rbf::TrainerOptions trainer;
    trainer.p_min_grid = {1, 2};
    trainer.alpha_grid = {4, 8, 12};
    const auto unit = sampling::toUnitSample(space, out.lhs_points);
    out.trained = rbf::trainRbfModel(unit, out.responses, trainer);

    // Probe the network at points the oracle never saw.
    math::Rng probe_rng(7);
    for (int i = 0; i < 20; ++i)
        out.predictions.push_back(out.trained.network.predict(
            space.toUnit(space.randomPoint(probe_rng))));

    util::setGlobalThreads(0);
    return out;
}

/** Assert two pipeline runs produced bit-identical artifacts. */
void
expectIdentical(const PipelineResult &serial,
                const PipelineResult &parallel)
{
    // LHS: same winning hypercube, point for point.
    EXPECT_EQ(serial.lhs_discrepancy, parallel.lhs_discrepancy);
    ASSERT_EQ(serial.lhs_points.size(), parallel.lhs_points.size());
    for (std::size_t i = 0; i < serial.lhs_points.size(); ++i)
        EXPECT_EQ(serial.lhs_points[i], parallel.lhs_points[i])
            << "LHS point " << i;

    // Oracle batch: same responses from the same number of runs.
    EXPECT_EQ(serial.responses, parallel.responses);
    EXPECT_EQ(serial.simulations, parallel.simulations);

    // Trainer: same grid winner and an identical network.
    EXPECT_EQ(serial.trained.p_min, parallel.trained.p_min);
    EXPECT_EQ(serial.trained.alpha, parallel.trained.alpha);
    EXPECT_EQ(serial.trained.criterion_value,
              parallel.trained.criterion_value);
    EXPECT_EQ(serial.trained.train_sse, parallel.trained.train_sse);
    const auto &sn = serial.trained.network;
    const auto &pn = parallel.trained.network;
    ASSERT_EQ(sn.numBases(), pn.numBases());
    EXPECT_EQ(sn.weights(), pn.weights());
    for (std::size_t j = 0; j < sn.numBases(); ++j) {
        EXPECT_EQ(sn.bases()[j].center(), pn.bases()[j].center())
            << "center " << j;
        EXPECT_EQ(sn.bases()[j].radius(), pn.bases()[j].radius())
            << "radius " << j;
    }

    // And identical predictions everywhere we probed.
    EXPECT_EQ(serial.predictions, parallel.predictions);
}

TEST(ParallelDeterminism, McfPipelineBitIdentical1v4)
{
    expectIdentical(runPipeline("mcf", 1), runPipeline("mcf", 4));
}

TEST(ParallelDeterminism, VortexPipelineBitIdentical1v4)
{
    expectIdentical(runPipeline("vortex", 1), runPipeline("vortex", 4));
}

TEST(ParallelDeterminism, ModelBuilderBitIdentical1v4)
{
    // The full BuildRBFmodel driver, end to end, over the simulator.
    auto build = [](unsigned threads) {
        util::setGlobalThreads(threads);
        auto space = dspace::paperTrainSpace();
        const auto tr = trace::generateTrace(
            trace::profileByName("mcf"), kTraceLen);
        sim::SimOptions sim_opts;
        sim_opts.warmup_instructions = 2000;
        core::SimulatorOracle oracle(space, tr, sim_opts);
        core::ModelBuilder builder(space, dspace::paperTestSpace(),
                                   oracle);
        core::BuildOptions opts;
        opts.sample_sizes = {kSampleSize};
        opts.target_mean_error = 0.0;
        opts.lhs_candidates = kLhsCandidates;
        opts.num_test_points = 20;
        opts.trainer.p_min_grid = {1, 2};
        opts.trainer.alpha_grid = {4, 8};
        auto result = builder.build(opts);
        util::setGlobalThreads(0);
        return std::tuple(result.simulations,
                          result.final().rbf_error.mean_error,
                          result.final().rbf_error.errors,
                          builder.testResponses());
    };
    EXPECT_EQ(build(1), build(4));
}

TEST(ParallelDeterminism, ConcurrentDuplicateBatchDeduplicates)
{
    // A batch full of duplicates must simulate each unique point
    // exactly once even when requests for the same point are in
    // flight concurrently — and every duplicate must receive the
    // identical memoized value.
    util::setGlobalThreads(4);
    auto space = dspace::paperTrainSpace();
    const auto tr = trace::generateTrace(
        trace::profileByName("mcf"), kTraceLen);
    sim::SimOptions sim_opts;
    sim_opts.warmup_instructions = 2000;
    core::SimulatorOracle oracle(space, tr, sim_opts);

    // 4 unique points, each repeated 8 times, interleaved so that
    // concurrent duplicate requests are likely.
    math::Rng rng(3);
    std::vector<dspace::DesignPoint> unique;
    for (int i = 0; i < 4; ++i)
        unique.push_back(space.randomPoint(rng));
    std::vector<dspace::DesignPoint> batch;
    for (int rep = 0; rep < 8; ++rep)
        for (const auto &p : unique)
            batch.push_back(p);

    const auto ys = oracle.evaluateAll(batch);
    ASSERT_EQ(ys.size(), batch.size());

    // Exactly one simulator invocation per unique point; everything
    // else was a cache hit (completed or in-flight).
    EXPECT_EQ(oracle.evaluations(), unique.size());
    EXPECT_EQ(oracle.cacheHits(), batch.size() - unique.size());

    // All copies of a point got the identical value.
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(ys[i], ys[i % unique.size()]);

    // A second identical batch is pure cache: no new simulations, and
    // values match the first batch bit for bit.
    const auto again = oracle.evaluateAll(batch);
    EXPECT_EQ(oracle.evaluations(), unique.size());
    EXPECT_EQ(again, ys);
    util::setGlobalThreads(0);
}

} // namespace

