/**
 * @file
 * Wire-protocol suite: every message type round-trips bit-exactly,
 * and every class of malformed frame — bad magic, version mismatch,
 * oversized declared length, truncation at any byte, CRC corruption,
 * trailing garbage, inconsistent payload internals — is rejected with
 * ProtocolError (never UB, never a crash).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "serve/protocol.hh"
#include "serve/remote_oracle.hh"
#include "util/crc32.hh"

namespace {

using namespace ppm;
using namespace ppm::serve;

EvalRequest
sampleRequest()
{
    EvalRequest req;
    req.benchmark = "mcf";
    req.metric = core::Metric::EnergyPerInst;
    req.trace_length = 123456;
    req.warmup = 7890;
    req.seed = 0xDEADBEEFCAFEF00DULL;
    req.points = {
        {14, 64, 0.5, 0.25, 1024, 12, 32, 32, 2},
        {7, 128, 0.75, 0.5, 256, 5, 8, 64, 1.0000001},
    };
    return req;
}

TEST(ServeProtocol, EvalRequestRoundTrip)
{
    const EvalRequest req = sampleRequest();
    const auto bytes = encodeEvalRequest(req);
    const Frame frame = decodeFrame(bytes);
    ASSERT_EQ(frame.type, MsgType::EvalRequest);
    const EvalRequest out = parseEvalRequest(frame.payload);
    EXPECT_EQ(out.benchmark, req.benchmark);
    EXPECT_EQ(out.metric, req.metric);
    EXPECT_EQ(out.trace_length, req.trace_length);
    EXPECT_EQ(out.warmup, req.warmup);
    EXPECT_EQ(out.seed, req.seed);
    ASSERT_EQ(out.points.size(), req.points.size());
    for (std::size_t i = 0; i < req.points.size(); ++i)
        EXPECT_EQ(out.points[i], req.points[i]) << "point " << i;
}

TEST(ServeProtocol, EmptyBatchRoundTrip)
{
    EvalRequest req;
    req.benchmark = "vortex";
    const auto bytes = encodeEvalRequest(req);
    const EvalRequest out =
        parseEvalRequest(decodeFrame(bytes).payload);
    EXPECT_TRUE(out.points.empty());
}

TEST(ServeProtocol, EvalResponseRoundTrip)
{
    EvalResponse resp;
    resp.values = {1.25, -0.0, 3.5e300, 7.0};
    resp.fresh_evaluations = 3;
    resp.total_evaluations = 42;
    const auto bytes = encodeEvalResponse(resp);
    const Frame frame = decodeFrame(bytes);
    ASSERT_EQ(frame.type, MsgType::EvalResponse);
    const EvalResponse out = parseEvalResponse(frame.payload);
    EXPECT_EQ(out.values, resp.values);
    EXPECT_EQ(out.fresh_evaluations, resp.fresh_evaluations);
    EXPECT_EQ(out.total_evaluations, resp.total_evaluations);
    // Exact bit patterns survive, including the negative zero.
    EXPECT_TRUE(std::signbit(out.values[1]));
}

TEST(ServeProtocol, ErrorRoundTrip)
{
    const auto bytes = encodeError({"unknown benchmark 'gcc'"});
    const Frame frame = decodeFrame(bytes);
    ASSERT_EQ(frame.type, MsgType::Error);
    EXPECT_EQ(parseError(frame.payload).message,
              "unknown benchmark 'gcc'");
}

TEST(ServeProtocol, PingPongRoundTrip)
{
    const std::uint64_t nonce = 0x0123456789ABCDEFULL;
    Frame ping = decodeFrame(encodePing(nonce));
    ASSERT_EQ(ping.type, MsgType::Ping);
    EXPECT_EQ(parsePing(ping.payload), nonce);
    Frame pong = decodeFrame(encodePong(nonce + 1));
    ASSERT_EQ(pong.type, MsgType::Pong);
    EXPECT_EQ(parsePong(pong.payload), nonce + 1);
}

TEST(ServeProtocol, RejectsBadMagic)
{
    auto bytes = encodePing(1);
    bytes[0] ^= 0xFF;
    EXPECT_THROW(decodeFrame(bytes), ProtocolError);
}

TEST(ServeProtocol, RejectsVersionMismatch)
{
    auto bytes = encodePing(1);
    bytes[4] += 1; // version is bytes 4-5, little-endian
    EXPECT_THROW(decodeFrame(bytes), ProtocolError);
}

TEST(ServeProtocol, RejectsUnknownType)
{
    auto bytes = encodePing(1);
    bytes[6] = 0x7F; // type is bytes 6-7
    EXPECT_THROW(decodeFrame(bytes), ProtocolError);
}

TEST(ServeProtocol, RejectsOversizedDeclaredLength)
{
    // A header declaring a payload over kMaxPayload must be rejected
    // from the header alone — before any payload allocation.
    auto bytes = encodePing(1);
    const std::uint32_t huge = kMaxPayload + 1;
    std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
    EXPECT_THROW(decodeHeader(bytes.data(), bytes.size()),
                 ProtocolError);
    EXPECT_THROW(decodeFrame(bytes), ProtocolError);
}

TEST(ServeProtocol, RejectsTruncationAtEveryByte)
{
    const auto bytes = encodeEvalRequest(sampleRequest());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
        EXPECT_THROW(decodeFrame(bytes.data(), cut), ProtocolError)
            << "cut at byte " << cut;
}

TEST(ServeProtocol, RejectsCrcMismatchAtEveryPayloadByte)
{
    const auto bytes = encodeEvalRequest(sampleRequest());
    for (std::size_t i = kHeaderSize;
         i < bytes.size() - kTrailerSize; ++i) {
        auto corrupt = bytes;
        corrupt[i] ^= 0x01;
        EXPECT_THROW(decodeFrame(corrupt), ProtocolError)
            << "flip at byte " << i;
    }
}

TEST(ServeProtocol, RejectsTrailingGarbage)
{
    auto bytes = encodePing(1);
    bytes.push_back(0);
    EXPECT_THROW(decodeFrame(bytes), ProtocolError);
}

TEST(ServeProtocol, RejectsInconsistentPointGeometry)
{
    // A CRC-valid frame whose payload *internals* lie: n*dims larger
    // than the actual point data.
    EvalRequest req = sampleRequest();
    auto bytes = encodeEvalRequest(req);
    Frame frame = decodeFrame(bytes);
    // num_points lives right after benchmark + metric + 3x u64.
    const std::size_t n_off = 4 + req.benchmark.size() + 2 + 24;
    frame.payload[n_off] += 1;
    // Re-frame with a correct CRC so only the semantic check can
    // reject it.
    const auto reframed =
        encodeFrame(MsgType::EvalRequest, frame.payload);
    EXPECT_THROW(parseEvalRequest(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsOverlongStringInsidePayload)
{
    // String length field larger than the payload itself.
    std::vector<std::uint8_t> payload = {0xFF, 0xFF, 0xFF, 0x7F,
                                         'm', 'c', 'f'};
    const auto framed = encodeFrame(MsgType::Error, payload);
    EXPECT_THROW(parseError(decodeFrame(framed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsRaggedBatchAtEncodeTime)
{
    EvalRequest req = sampleRequest();
    req.points[1].pop_back();
    EXPECT_THROW(encodeEvalRequest(req), ProtocolError);
}

obs::Snapshot
sampleSnapshot()
{
    obs::Snapshot snap;
    snap.counters = {{"oracle.simulations", 17},
                     {"serve.requests", 3}};
    snap.gauges = {{"serve.active_connections", -2}};
    obs::HistogramValue hist;
    hist.name = "span.serve.request";
    hist.count = 5;
    hist.total_ns = 1234567;
    hist.buckets.assign(obs::Histogram::kBuckets, 0);
    hist.buckets[3] = 2;
    hist.buckets[10] = 3;
    snap.histograms = {hist};
    return snap;
}

TEST(ServeProtocol, StatsRequestRoundTrip)
{
    const std::uint64_t nonce = 0xFEEDFACEULL;
    const Frame frame = decodeFrame(encodeStatsRequest(nonce));
    ASSERT_EQ(frame.type, MsgType::StatsRequest);
    EXPECT_EQ(parseStatsRequest(frame.payload), nonce);
}

TEST(ServeProtocol, StatsResponseRoundTrip)
{
    const obs::Snapshot snap = sampleSnapshot();
    const auto bytes = encodeStatsResponse(snap);
    const Frame frame = decodeFrame(bytes);
    ASSERT_EQ(frame.type, MsgType::StatsResponse);
    const obs::Snapshot out = parseStatsResponse(frame.payload);
    ASSERT_EQ(out.counters.size(), snap.counters.size());
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        EXPECT_EQ(out.counters[i].name, snap.counters[i].name);
        EXPECT_EQ(out.counters[i].value, snap.counters[i].value);
    }
    ASSERT_EQ(out.gauges.size(), 1u);
    EXPECT_EQ(out.gauges[0].name, "serve.active_connections");
    EXPECT_EQ(out.gauges[0].value, -2); // sign survives the wire
    ASSERT_EQ(out.histograms.size(), 1u);
    EXPECT_EQ(out.histograms[0].name, snap.histograms[0].name);
    EXPECT_EQ(out.histograms[0].count, snap.histograms[0].count);
    EXPECT_EQ(out.histograms[0].total_ns,
              snap.histograms[0].total_ns);
    EXPECT_EQ(out.histograms[0].buckets, snap.histograms[0].buckets);
}

TEST(ServeProtocol, EmptyStatsResponseRoundTrip)
{
    const obs::Snapshot out =
        parseStatsResponse(decodeFrame(encodeStatsResponse({}))
                               .payload);
    EXPECT_TRUE(out.counters.empty());
    EXPECT_TRUE(out.gauges.empty());
    EXPECT_TRUE(out.histograms.empty());
}

TEST(ServeProtocol, RejectsStatsSchemaVersionMismatch)
{
    Frame frame = decodeFrame(encodeStatsResponse(sampleSnapshot()));
    frame.payload[0] += 1; // stats_version is bytes 0-1
    const auto reframed =
        encodeFrame(MsgType::StatsResponse, frame.payload);
    EXPECT_THROW(parseStatsResponse(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsStatsEntryCountLie)
{
    // CRC-valid frame whose counter count exceeds the actual data.
    Frame frame = decodeFrame(encodeStatsResponse(sampleSnapshot()));
    frame.payload[2] += 1; // counter count is bytes 2-5
    const auto reframed =
        encodeFrame(MsgType::StatsResponse, frame.payload);
    EXPECT_THROW(parseStatsResponse(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsStatsOversizedSections)
{
    std::vector<std::uint8_t> payload;
    payload.push_back(static_cast<std::uint8_t>(kStatsVersion));
    payload.push_back(
        static_cast<std::uint8_t>(kStatsVersion >> 8));
    const std::uint32_t huge = kMaxStatsEntries + 1;
    for (int shift = 0; shift < 32; shift += 8)
        payload.push_back(static_cast<std::uint8_t>(huge >> shift));
    const auto framed = encodeFrame(MsgType::StatsResponse, payload);
    EXPECT_THROW(parseStatsResponse(decodeFrame(framed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsStatsTruncationAtEveryByte)
{
    const auto bytes = encodeStatsResponse(sampleSnapshot());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
        EXPECT_THROW(decodeFrame(bytes.data(), cut), ProtocolError)
            << "cut at byte " << cut;
}

TEST(ServeProtocol, RejectsStatsTrailingBytes)
{
    Frame frame = decodeFrame(encodeStatsResponse(sampleSnapshot()));
    frame.payload.push_back(0);
    const auto reframed =
        encodeFrame(MsgType::StatsResponse, frame.payload);
    EXPECT_THROW(parseStatsResponse(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsTooManyHistogramBuckets)
{
    obs::Snapshot snap;
    obs::HistogramValue hist;
    hist.name = "span.bad";
    hist.buckets.assign(kMaxStatsBuckets + 1, 0);
    snap.histograms = {hist};
    EXPECT_THROW(encodeStatsResponse(snap), ProtocolError);
}

TEST(ServeProtocol, PredictRequestRoundTrip)
{
    PredictRequest req;
    req.model = ModelKind::Linear;
    req.points = {
        {14, 64, 0.5, 0.25, 1024, 12, 32, 32, 2},
        {7, 128, 0.75, 0.5, 256, 5, 8, 64, 1.0000001},
    };
    const Frame frame = decodeFrame(encodePredictRequest(req));
    ASSERT_EQ(frame.type, MsgType::PredictRequest);
    const PredictRequest out = parsePredictRequest(frame.payload);
    EXPECT_EQ(out.model, req.model);
    ASSERT_EQ(out.points.size(), req.points.size());
    for (std::size_t i = 0; i < req.points.size(); ++i)
        EXPECT_EQ(out.points[i], req.points[i]) << "point " << i;
}

TEST(ServeProtocol, PredictResponseRoundTrip)
{
    PredictResponse resp;
    resp.model_version = 0xABCDEF0123456789ULL;
    resp.values = {0.5, -0.0, 1e-300};
    const Frame frame = decodeFrame(encodePredictResponse(resp));
    ASSERT_EQ(frame.type, MsgType::PredictResponse);
    const PredictResponse out = parsePredictResponse(frame.payload);
    EXPECT_EQ(out.model_version, resp.model_version);
    EXPECT_EQ(out.values, resp.values);
    EXPECT_TRUE(std::signbit(out.values[1]));
}

TEST(ServeProtocol, RejectsPredictRequestUnknownModelKind)
{
    PredictRequest req;
    req.points = {{1, 2, 3}};
    Frame frame = decodeFrame(encodePredictRequest(req));
    frame.payload[0] = 0x7F; // model kind is bytes 0-1
    const auto reframed =
        encodeFrame(MsgType::PredictRequest, frame.payload);
    EXPECT_THROW(parsePredictRequest(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsPredictBatchCountLie)
{
    PredictRequest req;
    req.points = {{1, 2, 3}, {4, 5, 6}};
    Frame frame = decodeFrame(encodePredictRequest(req));
    frame.payload[2] += 1; // num_points is bytes 2-5
    const auto reframed =
        encodeFrame(MsgType::PredictRequest, frame.payload);
    EXPECT_THROW(parsePredictRequest(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsPredictResponseValueCountLie)
{
    PredictResponse resp;
    resp.model_version = 1;
    resp.values = {1.0, 2.0};
    Frame frame = decodeFrame(encodePredictResponse(resp));
    frame.payload[8] += 1; // num_values follows the u64 version
    const auto reframed =
        encodeFrame(MsgType::PredictResponse, frame.payload);
    EXPECT_THROW(parsePredictResponse(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, ModelInfoRoundTrip)
{
    const Frame req = decodeFrame(encodeModelInfoRequest(0xF00D));
    ASSERT_EQ(req.type, MsgType::ModelInfoRequest);
    EXPECT_EQ(parseModelInfoRequest(req.payload), 0xF00Du);

    ModelInfo info;
    info.loaded = true;
    info.model_version = 42;
    info.benchmark = "twolf";
    info.metric = core::Metric::EnergyPerInst;
    info.trace_length = 100000;
    info.warmup = 5000;
    info.num_bases = 17;
    info.num_linear_terms = 9;
    info.param_names = {"depth", "rob", "l2size"};
    const Frame frame = decodeFrame(encodeModelInfoResponse(info));
    ASSERT_EQ(frame.type, MsgType::ModelInfoResponse);
    const ModelInfo out = parseModelInfoResponse(frame.payload);
    EXPECT_TRUE(out.loaded);
    EXPECT_EQ(out.model_version, info.model_version);
    EXPECT_EQ(out.benchmark, info.benchmark);
    EXPECT_EQ(out.metric, info.metric);
    EXPECT_EQ(out.trace_length, info.trace_length);
    EXPECT_EQ(out.warmup, info.warmup);
    EXPECT_EQ(out.num_bases, info.num_bases);
    EXPECT_EQ(out.num_linear_terms, info.num_linear_terms);
    EXPECT_EQ(out.param_names, info.param_names);
}

TEST(ServeProtocol, EmptyModelInfoRoundTrip)
{
    // A server with no model yet answers loaded=false.
    const ModelInfo out = parseModelInfoResponse(
        decodeFrame(encodeModelInfoResponse({})).payload);
    EXPECT_FALSE(out.loaded);
    EXPECT_EQ(out.model_version, 0u);
    EXPECT_TRUE(out.param_names.empty());
}

TEST(ServeProtocol, RejectsModelInfoBadLoadedFlag)
{
    Frame frame = decodeFrame(encodeModelInfoResponse({}));
    frame.payload[0] = 2; // loaded flag must be 0/1
    const auto reframed =
        encodeFrame(MsgType::ModelInfoResponse, frame.payload);
    EXPECT_THROW(
        parseModelInfoResponse(decodeFrame(reframed).payload),
        ProtocolError);
}

TEST(ServeProtocol, ModelPushRoundTrip)
{
    const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5, 0xFF};
    const Frame frame = decodeFrame(encodeModelPush(blob));
    ASSERT_EQ(frame.type, MsgType::ModelPush);
    EXPECT_EQ(parseModelPush(frame.payload), blob);

    ModelPushAck ack;
    ack.accepted = true;
    ack.model_version = 7;
    ack.message = "";
    const Frame aframe = decodeFrame(encodeModelPushAck(ack));
    ASSERT_EQ(aframe.type, MsgType::ModelPushAck);
    const ModelPushAck out = parseModelPushAck(aframe.payload);
    EXPECT_TRUE(out.accepted);
    EXPECT_EQ(out.model_version, 7u);
    EXPECT_TRUE(out.message.empty());
}

TEST(ServeProtocol, RejectsModelPushLengthLie)
{
    Frame frame = decodeFrame(encodeModelPush({1, 2, 3}));
    frame.payload[0] += 1; // blob length is bytes 0-3
    const auto reframed =
        encodeFrame(MsgType::ModelPush, frame.payload);
    EXPECT_THROW(parseModelPush(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, RejectsOversizedModelPushAtEncodeTime)
{
    const std::vector<std::uint8_t> blob(kMaxModelBytes + 1, 0xAA);
    EXPECT_THROW(encodeModelPush(blob), ProtocolError);
}

TEST(ServeProtocol, RejectsModelPushAckBadFlag)
{
    Frame frame = decodeFrame(encodeModelPushAck({}));
    frame.payload[0] = 3; // accepted flag must be 0/1
    const auto reframed =
        encodeFrame(MsgType::ModelPushAck, frame.payload);
    EXPECT_THROW(parseModelPushAck(decodeFrame(reframed).payload),
                 ProtocolError);
}

TEST(ServeProtocol, Crc32KnownVector)
{
    // The catalogue value for "123456789" pins the polynomial.
    EXPECT_EQ(ppm::util::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(ppm::util::crc32("", 0), 0x00000000u);
    // Incremental == one-shot.
    const std::uint32_t part = ppm::util::crc32("1234", 4);
    EXPECT_EQ(ppm::util::crc32("56789", 5, part), 0xCBF43926u);
}

TEST(ServeProtocol, BackoffDoublesAndSaturates)
{
    // The RemoteOracle retry schedule with the default options:
    // 25, 50, ..., clamped at backoff_max_ms.
    int ms = 25;
    std::vector<int> schedule;
    for (int i = 0; i < 8; ++i) {
        schedule.push_back(ms);
        ms = nextBackoffMs(ms, 500);
    }
    EXPECT_EQ(schedule, (std::vector<int>{25, 50, 100, 200, 400, 500,
                                          500, 500}));

    // Saturation happens before the doubling, so even a schedule
    // driven to the integer ceiling cannot overflow (the pre-fix
    // unconditional `backoff_ms *= 2` was signed-overflow UB here).
    constexpr int kMax = std::numeric_limits<int>::max();
    EXPECT_EQ(nextBackoffMs(kMax / 2 + 1, kMax), kMax);
    EXPECT_EQ(nextBackoffMs(kMax, kMax), kMax);
    EXPECT_EQ(nextBackoffMs(kMax / 2, kMax), kMax / 2 * 2);
}

} // namespace
