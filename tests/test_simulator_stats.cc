/**
 * @file
 * Deeper out-of-order core invariants: determinism, statistics
 * consistency, warmup semantics, and quantified penalties on
 * hand-built traces where the expected timing is known.
 */

#include <gtest/gtest.h>

#include "dspace/paper_space.hh"
#include "sim/power.hh"
#include "sim/simulator.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace {

using namespace ppm;
using namespace ppm::sim;

const trace::Trace &
sharedTrace()
{
    static const trace::Trace t =
        trace::generateTrace(trace::profileByName("parser"), 30000);
    return t;
}

SimStats
run(const ProcessorConfig &cfg, std::uint64_t warmup = 0)
{
    SimOptions opts;
    opts.warmup_instructions = warmup;
    return simulate(sharedTrace(), cfg, opts);
}

TEST(SimulatorStats, DeterministicAcrossRuns)
{
    ProcessorConfig cfg;
    const auto a = run(cfg);
    const auto b = run(cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.dl1.misses, b.dl1.misses);
    EXPECT_EQ(a.il1.misses, b.il1.misses);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.branch.mispredicts, b.branch.mispredicts);
    EXPECT_EQ(a.memory.requests, b.memory.requests);
}

TEST(SimulatorStats, CommitsWholeTrace)
{
    ProcessorConfig cfg;
    const auto stats = run(cfg);
    EXPECT_EQ(stats.instructions, sharedTrace().size());
}

TEST(SimulatorStats, WarmupReducesMeasuredInstructions)
{
    ProcessorConfig cfg;
    const auto warm = run(cfg, 10000);
    // Commit retires up to commit_width per cycle, so the snapshot
    // can overshoot the warmup boundary by a few instructions.
    EXPECT_LE(warm.instructions, sharedTrace().size() - 10000);
    EXPECT_GE(warm.instructions,
              sharedTrace().size() - 10000 -
                  static_cast<std::uint64_t>(cfg.commit_width));
    EXPECT_GT(warm.cycles, 0u);
}

TEST(SimulatorStats, WarmupCappedAtHalfTrace)
{
    ProcessorConfig cfg;
    const auto stats = run(cfg, 1000000000);
    EXPECT_EQ(stats.instructions, sharedTrace().size() / 2);
}

TEST(SimulatorStats, CacheAccessHierarchyConsistent)
{
    ProcessorConfig cfg;
    const auto stats = run(cfg);
    // L2 traffic comes only from L1 misses (plus DL1 victim
    // writebacks which also access the L2).
    EXPECT_GE(stats.l2.accesses,
              stats.il1.misses + stats.dl1.misses);
    EXPECT_LE(stats.l2.accesses,
              stats.il1.misses + stats.dl1.misses +
                  stats.dl1.writebacks);
    // DRAM accesses = demand fills (L2 misses) + dirty L2 victims.
    EXPECT_EQ(stats.memory.requests,
              stats.l2.misses + stats.l2.writebacks);
}

TEST(SimulatorStats, BranchCountsMatchTrace)
{
    ProcessorConfig cfg;
    const auto stats = run(cfg);
    const auto summary = sharedTrace().summarize();
    EXPECT_EQ(stats.branch.branches, summary.branches);
    EXPECT_EQ(stats.branch.cond_branches, summary.cond_branches);
}

TEST(SimulatorStats, StallCountersBounded)
{
    ProcessorConfig cfg;
    const auto stats = run(cfg);
    // Each stall counter increments at most once per cycle.
    EXPECT_LE(stats.rob_full_stalls, stats.cycles);
    EXPECT_LE(stats.iq_full_stalls, stats.cycles);
    EXPECT_LE(stats.lsq_full_stalls, stats.cycles);
    EXPECT_LE(stats.fetch_empty_stalls, stats.cycles);
}

TEST(SimulatorStats, TinyWindowShiftsStallsToRob)
{
    ProcessorConfig tiny;
    tiny.rob_size = 8;
    tiny.iq_size = 8;
    tiny.lsq_size = 8;
    ProcessorConfig big;
    big.rob_size = 256;
    big.iq_size = 128;
    big.lsq_size = 128;
    const auto tiny_stats = run(tiny);
    const auto big_stats = run(big);
    EXPECT_GT(tiny_stats.rob_full_stalls + tiny_stats.iq_full_stalls,
              big_stats.rob_full_stalls + big_stats.iq_full_stalls);
    EXPECT_GT(tiny_stats.cpi(), big_stats.cpi());
}

TEST(SimulatorStats, CpiMonotoneInL2Latency)
{
    ProcessorConfig lo;
    lo.l2_lat = 5;
    ProcessorConfig hi;
    hi.l2_lat = 20;
    EXPECT_LT(run(lo).cycles, run(hi).cycles);
}

TEST(SimulatorStats, CpiMonotoneInDl1Latency)
{
    ProcessorConfig lo;
    lo.dl1_lat = 1;
    ProcessorConfig hi;
    hi.dl1_lat = 4;
    EXPECT_LT(run(lo).cycles, run(hi).cycles);
}

TEST(SimulatorStats, DeeperPipeNeverFaster)
{
    ProcessorConfig shallow;
    shallow.pipe_depth = 7;
    ProcessorConfig deep;
    deep.pipe_depth = 24;
    EXPECT_LE(run(shallow).cycles, run(deep).cycles);
}

TEST(SimulatorStats, BiggerDl1ReducesMisses)
{
    ProcessorConfig small;
    small.dl1_size_kb = 8;
    ProcessorConfig large;
    large.dl1_size_kb = 64;
    EXPECT_GT(run(small).dl1.misses, run(large).dl1.misses);
}

TEST(SimulatorStats, BiggerL2ReducesDramTraffic)
{
    ProcessorConfig small;
    small.l2_size_kb = 256;
    ProcessorConfig large;
    large.l2_size_kb = 8192;
    EXPECT_GT(run(small).memory.requests,
              run(large).memory.requests);
}

TEST(SimulatorStats, RowHitsNeverExceedRequests)
{
    ProcessorConfig cfg;
    const auto stats = run(cfg);
    EXPECT_LE(stats.memory.row_hits, stats.memory.requests);
}

TEST(SimulatorStats, PowerScalesWithActivity)
{
    // The same configuration on a longer measured region must consume
    // proportionally more total energy (same EPI ballpark).
    ProcessorConfig cfg;
    SimOptions opts;
    opts.warmup_instructions = 0;
    const auto trace_long =
        trace::generateTrace(trace::profileByName("parser"), 30000);
    const auto trace_short =
        trace::generateTrace(trace::profileByName("parser"), 10000);
    const auto long_stats = simulate(trace_long, cfg, opts);
    const auto short_stats = simulate(trace_short, cfg, opts);
    const auto long_rep = computePower(cfg, long_stats);
    const auto short_rep = computePower(cfg, short_stats);
    EXPECT_GT(long_rep.total(), short_rep.total() * 2);
    EXPECT_NEAR(long_rep.epi(long_stats) / short_rep.epi(short_stats),
                1.0, 0.35);
}

TEST(SimulatorStats, EventSkippingPreservesLongLatencyTiming)
{
    // A trace of one dependent cold load chain: the cycle count must
    // reflect full DRAM latency per load even though the simulator
    // skips idle cycles internally.
    trace::Trace t("chain");
    std::uint64_t pc = 0x400000;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        trace::TraceInstruction inst;
        inst.pc = pc;
        inst.op = trace::OpClass::Load;
        inst.dest = 5;
        inst.src[0] = 5;
        inst.mem_addr = 0x10000000 +
            static_cast<std::uint64_t>(i) * (1 << 20); // all cold
        t.push(inst);
        pc += 4;
    }
    ProcessorConfig cfg;
    SimOptions opts;
    opts.warmup_instructions = 0;
    const auto stats = simulate(t, cfg, opts);
    // Each chained load costs at least the uncontended DRAM round
    // trip (dl1 + l2 + controller + activate + cas + burst).
    const std::uint64_t per_load = static_cast<std::uint64_t>(
        cfg.dl1_lat + cfg.l2_lat + cfg.memctrl_overhead +
        cfg.dram_trcd + cfg.dram_tcas + cfg.bus_burst_cycles);
    EXPECT_GE(stats.cycles, per_load * (n - 1));
    // And not wildly more (no lost cycles from skipping).
    EXPECT_LE(stats.cycles, per_load * n + 2000);
}

} // namespace
