/**
 * @file
 * Online-trainer test wall (in-process half; the spawned-binary half
 * lives in test_trainer_e2e.cc):
 *
 *  - IncrementalFit vs batchRidgeWeights over 10k random networks and
 *    streamed point orders — rank-deficient and duplicate-heavy
 *    streams included — within the condition-number ULP bound the
 *    header documents, and bit-identical across same-order refolds.
 *  - ArchiveTailer: record tailing across polls, the concurrent
 *    writer's partially flushed tail record (byte-at-a-time slow
 *    writer regression — retry, never corrupt-tail), CRC-corrupt
 *    tails healing through the owner's truncation, context mismatch,
 *    absent files, and seek/resume.
 *  - OnlineTrainer: exact unique-fold counting across overlapping
 *    shard archives, bit-identical snapshots from 1 vs 4 shard
 *    archives with interleaved appends, crash-safe state resume
 *    (proven by poisoning the already-consumed archive bytes), the
 *    growth and prequential-error refit triggers, and the drift
 *    arming gate.
 *  - adaptedKernelBandwidth: the PR 3 leftover — bandwidth contracts
 *    with sample growth, floored, and feeds acquireBatch's default.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "dspace/paper_space.hh"
#include "math/rng.hh"
#include "rbf/incremental.hh"
#include "rbf/network.hh"
#include "sampling/batch_acquisition.hh"
#include "serve/archive_tail.hh"
#include "serve/model_snapshot.hh"
#include "serve/result_archive.hh"
#include "train/online_trainer.hh"

namespace {

namespace fs = std::filesystem;
using namespace ppm;
using Key = core::ResultStore::Key;

fs::path
uniqueDir(const std::string &tag)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("ppm_online_" + tag + "_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    return dir;
}

/** The oracle context every trainer/archive in this file shares. */
std::string
ctx()
{
    return "twolf|t2000|w0|CPI";
}

Key
makeKey(const dspace::DesignPoint &p)
{
    Key key;
    key.reserve(p.size());
    for (double v : p)
        key.push_back(static_cast<std::int64_t>(std::llround(v * 1e6)));
    return key;
}

/** Deterministic smooth ground truth standing in for the simulator. */
double
truth(const dspace::DesignSpace &space, const dspace::DesignPoint &p)
{
    const dspace::UnitPoint u = space.toUnit(p);
    double acc = 1.0;
    for (std::size_t k = 0; k < u.size(); ++k)
        acc += 0.1 * static_cast<double>(k + 1) * u[k];
    acc += 0.25 * u.front() * u.back();
    return acc;
}

/**
 * @p n design points with pairwise-distinct memo keys (paper-space
 * parameters are discrete, so raw randomPoint draws can collide).
 */
std::vector<dspace::DesignPoint>
uniquePoints(const dspace::DesignSpace &space, std::size_t n,
             std::uint64_t seed)
{
    math::Rng rng(seed);
    std::map<Key, dspace::DesignPoint> seen;
    while (seen.size() < n) {
        dspace::DesignPoint p = space.randomPoint(rng);
        seen.emplace(makeKey(p), std::move(p));
    }
    std::vector<dspace::DesignPoint> out;
    out.reserve(n);
    for (auto &[key, p] : seen)
        out.push_back(std::move(p));
    return out;
}

train::OnlineTrainerOptions
baseOptions()
{
    train::OnlineTrainerOptions opts;
    opts.benchmark = "twolf";
    opts.trace_length = 2000;
    opts.warmup = 0;
    opts.metric = core::Metric::Cpi;
    opts.min_train_points = 10;
    return opts;
}

std::vector<std::uint8_t>
fileBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/** Random Gaussian bases over @p dims (radii bounded away from 0). */
std::vector<rbf::GaussianBasis>
randomBases(math::Rng &rng, std::size_t dims, std::size_t m)
{
    std::vector<rbf::GaussianBasis> bases;
    bases.reserve(m);
    for (std::size_t b = 0; b < m; ++b) {
        dspace::UnitPoint center(dims);
        std::vector<double> radius(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            center[d] = rng.uniform();
            radius[d] = 0.2 + rng.uniform();
        }
        bases.emplace_back(std::move(center), std::move(radius));
    }
    return bases;
}

// ---------------------------------------------------------------------
// IncrementalFit vs batch equivalence (satellite 1)
// ---------------------------------------------------------------------

TEST(IncrementalFit, MatchesBatchSolveOver10kRandomStreams)
{
    constexpr int kTrials = 10'000;
    const double ridge = rbf::kIncrementalRidge;
    double worst_ratio = 0.0;

    for (int trial = 0; trial < kTrials; ++trial) {
        math::Rng rng(0x0317ee75'0000'0000ull + trial);
        const std::size_t dims = 1 + rng.uniformInt(6);
        const std::size_t m = 1 + rng.uniformInt(12);
        // n below m makes H rank-deficient: only the ridge term keeps
        // the normal equations positive definite.
        const std::size_t n_lo = std::max<std::size_t>(1, m / 2);
        const std::size_t n = n_lo + rng.uniformInt(3 * m - n_lo + 1);

        const std::vector<rbf::GaussianBasis> bases =
            randomBases(rng, dims, m);

        std::vector<dspace::UnitPoint> xs;
        std::vector<double> ys;
        xs.reserve(n);
        ys.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (!xs.empty() && rng.uniform() < 0.25) {
                // Duplicate an earlier point; half the time with its
                // exact response (a shard replay), half with a fresh
                // one (a noisy re-measure).
                const std::size_t j = rng.uniformInt(xs.size());
                xs.push_back(xs[j]);
                ys.push_back(rng.uniform() < 0.5
                                 ? ys[j]
                                 : rng.uniform(-2.0, 2.0));
                continue;
            }
            dspace::UnitPoint x(dims);
            for (std::size_t d = 0; d < dims; ++d)
                x[d] = rng.uniform();
            xs.push_back(std::move(x));
            ys.push_back(rng.uniform(-2.0, 2.0));
        }

        // Stream in a random order (Fisher-Yates off the same rng).
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        for (std::size_t i = n; i > 1; --i)
            std::swap(order[i - 1], order[rng.uniformInt(i)]);
        std::vector<dspace::UnitPoint> sx;
        std::vector<double> sy;
        for (std::size_t i : order) {
            sx.push_back(xs[i]);
            sy.push_back(ys[i]);
        }

        rbf::IncrementalFit fit(bases, ridge);
        rbf::IncrementalFit refold(bases, ridge);
        for (std::size_t i = 0; i < n; ++i) {
            fit.fold(sx[i], sy[i]);
            refold.fold(sx[i], sy[i]);
        }
        ASSERT_EQ(fit.points(), n);
        const std::vector<double> w_inc = fit.solve();
        const std::vector<double> w_batch =
            rbf::batchRidgeWeights(bases, sx, sy, ridge);
        ASSERT_EQ(w_inc.size(), m);
        ASSERT_EQ(w_batch.size(), m);

        // Determinism: the same fold order is bit-identical.
        const std::vector<double> w_again = refold.solve();
        ASSERT_EQ(std::memcmp(w_inc.data(), w_again.data(),
                              m * sizeof(double)),
                  0)
            << "trial " << trial;

        // The documented norm-wise bound, with kappa(G) estimated by
        // the Gershgorin row sums of the accumulated Gram matrix.
        std::vector<double> gram(m * m, 0.0);
        std::vector<double> h(m);
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t j = 0; j < m; ++j)
                h[j] = bases[j].evaluate(sx[p]);
            for (std::size_t r = 0; r < m; ++r)
                for (std::size_t c = 0; c < m; ++c)
                    gram[r * m + c] += h[r] * h[c];
        }
        double gersh = 0.0;
        for (std::size_t r = 0; r < m; ++r) {
            double row = ridge;
            for (std::size_t c = 0; c < m; ++c)
                row += std::abs(gram[r * m + c]);
            gersh = std::max(gersh, row);
        }
        const double kappa = (gersh + ridge) / ridge;
        double w_inf = 0.0;
        for (double w : w_batch)
            w_inf = std::max(w_inf, std::abs(w));
        const double tol = rbf::kIncrementalUlpFactor * kappa *
                           DBL_EPSILON * (w_inf + 1.0);
        for (std::size_t j = 0; j < m; ++j) {
            const double err = std::abs(w_inc[j] - w_batch[j]);
            ASSERT_LE(err, tol)
                << "trial " << trial << " weight " << j << ": inc "
                << w_inc[j] << " batch " << w_batch[j] << " (m=" << m
                << " n=" << n << " dims=" << dims << ")";
            worst_ratio = std::max(worst_ratio, err / tol);
        }
    }
    // The factor should have real headroom; a choldate bug lands
    // orders of magnitude past 1.0, not at 1.0001.
    EXPECT_LT(worst_ratio, 0.5)
        << "incremental solve is drifting toward the contract edge";
}

TEST(IncrementalFit, PredictAndNetworkAgreeWithSolve)
{
    math::Rng rng(99);
    const std::vector<rbf::GaussianBasis> bases =
        randomBases(rng, 3, 5);
    rbf::IncrementalFit fit(bases);
    for (int i = 0; i < 12; ++i) {
        dspace::UnitPoint x{rng.uniform(), rng.uniform(),
                            rng.uniform()};
        fit.fold(x, rng.uniform(-1.0, 1.0));
    }
    const std::vector<double> w = fit.solve();
    const rbf::RbfNetwork net = fit.network();
    ASSERT_EQ(net.weights().size(), w.size());
    EXPECT_EQ(std::memcmp(net.weights().data(), w.data(),
                          w.size() * sizeof(double)),
              0);
    const dspace::UnitPoint probe{0.3, 0.6, 0.9};
    EXPECT_DOUBLE_EQ(fit.predict(probe), fit.predictWith(w, probe));
    // network() shares the weights bit-for-bit (asserted above), but
    // RbfNetwork::predict dispatches the host's SIMD kernel while the
    // fit pins the scalar one — equal only to a few ulps.
    EXPECT_NEAR(net.predict(probe), fit.predictWith(w, probe),
                1e-12 * std::abs(fit.predictWith(w, probe)) + 1e-15);
}

TEST(IncrementalFit, RejectsInvalidArguments)
{
    math::Rng rng(7);
    const std::vector<rbf::GaussianBasis> bases =
        randomBases(rng, 2, 3);
    EXPECT_THROW(rbf::IncrementalFit(bases, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(rbf::IncrementalFit(bases, -1e-9),
                 std::invalid_argument);
    rbf::IncrementalFit fit(bases);
    EXPECT_THROW(fit.predictWith({1.0}, dspace::UnitPoint{0.5, 0.5}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// ArchiveTailer (satellite 5: partial-flush tolerance + regression)
// ---------------------------------------------------------------------

TEST(ArchiveTailer, TailsRecordsAcrossPolls)
{
    const fs::path dir = uniqueDir("tail_basic");
    const std::string path = (dir / "a.ppma").string();
    const Key k1{1'000'000, 2'000'000};
    const Key k2{3'000'000, 4'000'000};
    const Key k3{5'500'000, 6'500'000};
    {
        serve::ResultArchive ar(path, ctx());
        ar.append(k1, 1.25);
        ar.append(k2, 2.5);
    }
    serve::ArchiveTailer tailer(path, ctx());
    auto got = tailer.poll();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].key, k1);
    EXPECT_EQ(got[0].value, 1.25);
    EXPECT_EQ(got[1].key, k2);
    EXPECT_EQ(got[1].value, 2.5);
    EXPECT_EQ(got[1].end_offset, fs::file_size(path));
    EXPECT_EQ(tailer.offset(), fs::file_size(path));
    EXPECT_TRUE(tailer.poll().empty());

    {
        serve::ResultArchive ar(path, ctx());
        EXPECT_EQ(ar.recordsLoaded(), 2u);
        ar.append(k3, -0.75);
    }
    got = tailer.poll();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].key, k3);
    EXPECT_EQ(got[0].value, -0.75);
    EXPECT_EQ(tailer.records(), 3u);
    EXPECT_EQ(tailer.retries(), 0u);
    fs::remove_all(dir);
}

TEST(ArchiveTailer, SlowWriterPartialRecordRetriesUntilComplete)
{
    // Regression for the tail-reader vs concurrent-writer race: a
    // reader may observe any byte prefix of an in-flight append. The
    // raw bytes of the second record are recovered by diffing two
    // archives that share their first record, then replayed onto a
    // copy one byte at a time; every prefix must poll empty (retry),
    // never throw, and never surface a garbage record.
    const fs::path dir = uniqueDir("tail_slow");
    const std::string one = (dir / "one.ppma").string();
    const std::string two = (dir / "two.ppma").string();
    const Key k1{1'000'000};
    const Key k2{2'000'000, -3'000'000, 4'000'000};
    {
        serve::ResultArchive ar(one, ctx());
        ar.append(k1, 1.0);
    }
    {
        serve::ResultArchive ar(two, ctx());
        ar.append(k1, 1.0);
        ar.append(k2, 2.5);
    }
    const std::vector<std::uint8_t> short_bytes = fileBytes(one);
    const std::vector<std::uint8_t> long_bytes = fileBytes(two);
    ASSERT_GT(long_bytes.size(), short_bytes.size());
    ASSERT_EQ(std::memcmp(long_bytes.data(), short_bytes.data(),
                          short_bytes.size()),
              0)
        << "archives with identical prefixes must share bytes";

    const std::string live = (dir / "live.ppma").string();
    fs::copy_file(one, live);
    serve::ArchiveTailer tailer(live, ctx());
    ASSERT_EQ(tailer.poll().size(), 1u);
    const std::uint64_t consumed = tailer.offset();

    const int fd = ::open(live.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    for (std::size_t i = short_bytes.size(); i < long_bytes.size();
         ++i) {
        ASSERT_EQ(::write(fd, &long_bytes[i], 1), 1);
        const auto got = tailer.poll();
        if (i + 1 < long_bytes.size()) {
            EXPECT_TRUE(got.empty())
                << "partial record surfaced at byte " << i + 1;
            EXPECT_EQ(tailer.offset(), consumed)
                << "offset advanced into a partial record";
        } else {
            ASSERT_EQ(got.size(), 1u);
            EXPECT_EQ(got[0].key, k2);
            EXPECT_EQ(got[0].value, 2.5);
        }
    }
    ::close(fd);
    EXPECT_EQ(tailer.records(), 2u);
    EXPECT_GT(tailer.retries(), 0u);
    EXPECT_EQ(tailer.offset(), long_bytes.size());
    fs::remove_all(dir);
}

TEST(ArchiveTailer, CorruptTailWaitsForOwnerTruncation)
{
    const fs::path dir = uniqueDir("tail_corrupt");
    const std::string path = (dir / "a.ppma").string();
    const Key k1{1'000'000};
    const Key k2{2'000'000};
    const Key k3{3'000'000};
    {
        serve::ResultArchive ar(path, ctx());
        ar.append(k1, 1.0);
        ar.append(k2, 2.0);
    }
    // Flip the last byte (inside record 2's CRC): a torn read and a
    // genuinely corrupt tail are indistinguishable to a reader, so
    // the tailer must wait, not consume or "recover".
    {
        const auto size = fs::file_size(path);
        const int fd = ::open(path.c_str(), O_WRONLY);
        ASSERT_GE(fd, 0);
        std::uint8_t last = 0;
        ASSERT_EQ(::pread(::open(path.c_str(), O_RDONLY), &last, 1,
                          static_cast<off_t>(size - 1)),
                  1);
        last ^= 0xFF;
        ASSERT_EQ(::pwrite(fd, &last, 1,
                           static_cast<off_t>(size - 1)),
                  1);
        ::close(fd);
    }
    serve::ArchiveTailer tailer(path, ctx());
    auto got = tailer.poll();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].key, k1);
    EXPECT_TRUE(tailer.poll().empty());
    EXPECT_GE(tailer.retries(), 2u);

    // The owning archive truncates the corrupt tail on open and
    // appends resume; the tailer picks up cleanly from its offset.
    {
        serve::ResultArchive ar(path, ctx());
        EXPECT_EQ(ar.recordsLoaded(), 1u);
        EXPECT_EQ(ar.recordsSkipped(), 1u);
        ar.append(k3, 3.0);
    }
    got = tailer.poll();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].key, k3);
    EXPECT_EQ(got[0].value, 3.0);
    fs::remove_all(dir);
}

TEST(ArchiveTailer, ContextMismatchAndGarbageThrow)
{
    const fs::path dir = uniqueDir("tail_ctx");
    const std::string path = (dir / "a.ppma").string();
    {
        serve::ResultArchive ar(path, ctx());
        ar.append(Key{1'000'000}, 1.0);
    }
    serve::ArchiveTailer wrong(path, "mcf|t2000|w0|CPI");
    EXPECT_THROW(wrong.poll(), serve::ArchiveError);

    const std::string junk = (dir / "junk.bin").string();
    {
        std::ofstream out(junk, std::ios::binary);
        for (int i = 0; i < 64; ++i)
            out.put('\xAB');
    }
    serve::ArchiveTailer garbage(junk, ctx());
    EXPECT_THROW(garbage.poll(), serve::ArchiveError);
    fs::remove_all(dir);
}

TEST(ArchiveTailer, AbsentFileThenAppears)
{
    const fs::path dir = uniqueDir("tail_absent");
    const std::string path = (dir / "late.ppma").string();
    serve::ArchiveTailer tailer(path, ctx());
    EXPECT_TRUE(tailer.poll().empty());
    EXPECT_TRUE(tailer.poll().empty());
    EXPECT_EQ(tailer.offset(), 0u);
    {
        serve::ResultArchive ar(path, ctx());
        ar.append(Key{7'000'000}, 7.5);
    }
    const auto got = tailer.poll();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].value, 7.5);
    fs::remove_all(dir);
}

TEST(ArchiveTailer, SeekResumesPastConsumedRecords)
{
    const fs::path dir = uniqueDir("tail_seek");
    const std::string path = (dir / "a.ppma").string();
    {
        serve::ResultArchive ar(path, ctx());
        ar.append(Key{1'000'000}, 1.0);
        ar.append(Key{2'000'000}, 2.0);
        ar.append(Key{3'000'000}, 3.0);
    }
    serve::ArchiveTailer first(path, ctx());
    auto got = first.poll();
    ASSERT_EQ(got.size(), 3u);
    const std::uint64_t after_two = got[1].end_offset;

    serve::ArchiveTailer resumed(path, ctx());
    resumed.seek(after_two);
    got = resumed.poll();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].key, (Key{3'000'000}));
    EXPECT_EQ(got[0].value, 3.0);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// OnlineTrainer
// ---------------------------------------------------------------------

TEST(OnlineTrainer, FoldsUniqueAcrossOverlappingShardArchives)
{
    const fs::path dir = uniqueDir("overlap");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const auto points = uniquePoints(space, 15, 42);
    {
        serve::ResultArchive a((dir / "a.ppma").string(), ctx());
        serve::ResultArchive b((dir / "b.ppma").string(), ctx());
        for (std::size_t i = 0; i < 10; ++i)
            a.append(makeKey(points[i]), truth(space, points[i]));
        for (std::size_t i = 5; i < 15; ++i)
            b.append(makeKey(points[i]), truth(space, points[i]));
    }
    train::OnlineTrainer trainer(space, baseOptions());
    trainer.addArchive((dir / "a.ppma").string());
    trainer.addArchive((dir / "b.ppma").string());
    EXPECT_EQ(trainer.step(), 15u)
        << "the 5 overlapping points must fold exactly once";
    EXPECT_EQ(trainer.folds(), 15u);
    EXPECT_TRUE(trainer.hasModel());
    EXPECT_EQ(trainer.refits(), 1u);
    EXPECT_GE(trainer.cvError(), 0.0);
    EXPECT_EQ(trainer.step(), 0u);
    EXPECT_EQ(trainer.refits(), 1u);
    EXPECT_EQ(trainer.publishes(), 0u); // no out_path configured
    fs::remove_all(dir);
}

TEST(OnlineTrainer, SnapshotBitIdenticalForOneVsFourShardArchives)
{
    // The canonical (sorted-key) fold order makes the published bytes
    // a function of the point *set*: one archive in insertion order
    // and four archives with a scrambled interleave must publish
    // byte-identical snapshots.
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const auto points = uniquePoints(space, 24, 7);

    const auto publish = [&](const std::string &tag, int shards,
                             std::uint64_t scramble) {
        const fs::path dir = uniqueDir("det_" + tag);
        {
            std::vector<std::unique_ptr<serve::ResultArchive>> ars;
            for (int s = 0; s < shards; ++s)
                ars.push_back(std::make_unique<serve::ResultArchive>(
                    (dir / ("s" + std::to_string(s) + ".ppma"))
                        .string(),
                    ctx()));
            std::vector<std::size_t> order(points.size());
            std::iota(order.begin(), order.end(), 0);
            math::Rng rng(scramble);
            for (std::size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1], order[rng.uniformInt(i)]);
            for (std::size_t n = 0; n < order.size(); ++n) {
                const auto &p = points[order[n]];
                ars[n % shards]->append(makeKey(p), truth(space, p));
            }
        }
        train::OnlineTrainerOptions opts = baseOptions();
        opts.out_path = (dir / "model.ppmm").string();
        opts.model_version = 7;
        train::OnlineTrainer trainer(space, opts);
        for (int s = 0; s < shards; ++s)
            trainer.addArchive(
                (dir / ("s" + std::to_string(s) + ".ppma")).string());
        EXPECT_EQ(trainer.step(), points.size());
        EXPECT_EQ(trainer.publishes(), 1u);
        EXPECT_EQ(trainer.modelVersion(), 7u);
        return dir;
    };

    const fs::path one = publish("one", 1, 1001);
    const fs::path four = publish("four", 4, 2002);
    const auto bytes_one = fileBytes(one / "model.ppmm");
    const auto bytes_four = fileBytes(four / "model.ppmm");
    ASSERT_FALSE(bytes_one.empty());
    ASSERT_EQ(bytes_one.size(), bytes_four.size());
    EXPECT_EQ(std::memcmp(bytes_one.data(), bytes_four.data(),
                          bytes_one.size()),
              0)
        << "shard layout leaked into the published snapshot";

    const serve::ModelSnapshot snap =
        serve::loadSnapshot((one / "model.ppmm").string());
    EXPECT_EQ(snap.model_version, 7u);
    EXPECT_EQ(snap.train_points, points.size());
    EXPECT_EQ(snap.benchmark, "twolf");
    fs::remove_all(one);
    fs::remove_all(four);
}

TEST(OnlineTrainer, StateResumeNeverRereadsConsumedBytes)
{
    const fs::path dir = uniqueDir("resume");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const auto points = uniquePoints(space, 15, 99);
    const std::string archive = (dir / "a.ppma").string();
    {
        serve::ResultArchive ar(archive, ctx());
        for (std::size_t i = 0; i < 12; ++i)
            ar.append(makeKey(points[i]), truth(space, points[i]));
    }
    train::OnlineTrainerOptions opts = baseOptions();
    opts.state_path = (dir / "trainer.state").string();
    opts.out_path = (dir / "model.ppmm").string();
    {
        train::OnlineTrainer trainer(space, opts);
        trainer.addArchive(archive);
        EXPECT_EQ(trainer.step(), 12u);
        EXPECT_EQ(trainer.publishes(), 1u);
        EXPECT_EQ(trainer.modelVersion(), 1u);
    }
    const std::uint64_t consumed = fs::file_size(archive);

    // Fresh records land after the consumed region...
    {
        serve::ResultArchive ar(archive, ctx());
        EXPECT_EQ(ar.recordsLoaded(), 12u);
        for (std::size_t i = 12; i < 15; ++i)
            ar.append(makeKey(points[i]), truth(space, points[i]));
    }
    // ...then the consumed record bytes are poisoned in place. A
    // resumed trainer that re-read from the top would stall on the
    // "partial" garbage forever; one that resumes from the persisted
    // offset never touches these bytes.
    {
        const std::size_t header_end = 4 + 2 + 4 + ctx().size() + 4;
        const int fd = ::open(archive.c_str(), O_WRONLY);
        ASSERT_GE(fd, 0);
        const std::vector<char> junk(
            static_cast<std::size_t>(consumed) - header_end, '\xFF');
        ASSERT_EQ(::pwrite(fd, junk.data(), junk.size(),
                           static_cast<off_t>(header_end)),
                  static_cast<ssize_t>(junk.size()));
        ::close(fd);
    }

    train::OnlineTrainer resumed(space, opts);
    EXPECT_EQ(resumed.folds(), 12u) << "state restore lost points";
    EXPECT_TRUE(resumed.hasModel())
        << "restart must rebuild the model from persisted points";
    resumed.addArchive(archive);
    EXPECT_EQ(resumed.step(), 3u)
        << "resume must fold exactly the appended records";
    EXPECT_EQ(resumed.folds(), 15u);
    EXPECT_EQ(resumed.tailRetries(), 0u)
        << "resume re-read already-consumed bytes";
    EXPECT_GE(resumed.modelVersion(), 2u)
        << "derived version must move past the persisted publish";
    fs::remove_all(dir);
}

TEST(OnlineTrainer, CorruptOrForeignStateFileThrows)
{
    const fs::path dir = uniqueDir("badstate");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    train::OnlineTrainerOptions opts = baseOptions();
    opts.state_path = (dir / "trainer.state").string();
    {
        std::ofstream out(opts.state_path, std::ios::binary);
        for (int i = 0; i < 64; ++i)
            out.put('\xAB');
    }
    EXPECT_THROW(train::OnlineTrainer(space, opts),
                 train::TrainerStateError);

    // A valid state for a different oracle context must not load.
    fs::remove(opts.state_path);
    {
        const auto pts = uniquePoints(space, 12, 5);
        serve::ResultArchive ar((dir / "a.ppma").string(), ctx());
        for (const auto &p : pts)
            ar.append(makeKey(p), truth(space, p));
        train::OnlineTrainer trainer(space, opts);
        trainer.addArchive((dir / "a.ppma").string());
        EXPECT_EQ(trainer.step(), 12u);
    }
    train::OnlineTrainerOptions other = opts;
    other.benchmark = "mcf";
    EXPECT_THROW(train::OnlineTrainer(space, other),
                 train::TrainerStateError);
    fs::remove_all(dir);
}

TEST(OnlineTrainer, GrowthTriggerRefitsAndVersionsMonotonically)
{
    const fs::path dir = uniqueDir("growth");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const auto points = uniquePoints(space, 24, 11);
    const std::string archive = (dir / "a.ppma").string();
    train::OnlineTrainerOptions opts = baseOptions();
    opts.out_path = (dir / "model.ppmm").string();
    opts.refit_growth = 2.0;

    train::OnlineTrainer trainer(space, opts);
    trainer.addArchive(archive);

    const auto appendRange = [&](std::size_t lo, std::size_t hi) {
        serve::ResultArchive ar(archive, ctx());
        for (std::size_t i = lo; i < hi; ++i)
            ar.append(makeKey(points[i]), truth(space, points[i]));
    };

    appendRange(0, 10); // first fit at min_train_points = 10
    EXPECT_EQ(trainer.step(), 10u);
    EXPECT_EQ(trainer.refits(), 1u);
    EXPECT_EQ(trainer.publishes(), 1u);
    EXPECT_EQ(trainer.modelVersion(), 1u);

    appendRange(10, 20); // 20 >= 2.0 * 10: growth trigger
    EXPECT_EQ(trainer.step(), 10u);
    EXPECT_EQ(trainer.refits(), 2u);
    EXPECT_EQ(trainer.publishes(), 2u);
    EXPECT_EQ(trainer.modelVersion(), 2u);

    appendRange(20, 24); // 24 < 40: folds only, still republishes
    EXPECT_EQ(trainer.step(), 4u);
    EXPECT_EQ(trainer.refits(), 2u);
    EXPECT_EQ(trainer.publishes(), 3u);
    EXPECT_EQ(trainer.modelVersion(), 3u);
    EXPECT_EQ(serve::loadSnapshot(opts.out_path).train_points, 24u);
    fs::remove_all(dir);
}

TEST(OnlineTrainer, PrequentialErrorTriggerForcesRefit)
{
    const fs::path dir = uniqueDir("preq");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const auto points = uniquePoints(space, 16, 23);
    const std::string archive = (dir / "a.ppma").string();
    train::OnlineTrainerOptions opts = baseOptions();
    opts.refit_growth = 100.0; // growth trigger out of the way
    opts.refit_error_min = 4;
    opts.refit_error_ratio = 2.0;

    train::OnlineTrainer trainer(space, opts);
    trainer.addArchive(archive);
    {
        serve::ResultArchive ar(archive, ctx());
        for (std::size_t i = 0; i < 12; ++i)
            ar.append(makeKey(points[i]), truth(space, points[i]));
    }
    EXPECT_EQ(trainer.step(), 12u);
    EXPECT_EQ(trainer.refits(), 1u);

    // Regime shift: the next points answer ~10x off the fitted
    // surface, so the prequential (predict-before-fold) error blows
    // past ratio * max(cv_error, floor) and forces re-selection.
    {
        serve::ResultArchive ar(archive, ctx());
        for (std::size_t i = 12; i < 16; ++i)
            ar.append(makeKey(points[i]),
                      truth(space, points[i]) + 10.0);
    }
    EXPECT_EQ(trainer.step(), 4u);
    EXPECT_EQ(trainer.refits(), 2u)
        << "prequential error trigger did not fire";
    EXPECT_EQ(trainer.prequentialError(), 0.0)
        << "refit must reset the prequential window";
    fs::remove_all(dir);
}

TEST(OnlineTrainer, DisarmedTrainerDefersPublishUntilArmed)
{
    const fs::path dir = uniqueDir("armed");
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const auto points = uniquePoints(space, 12, 31);
    const std::string archive = (dir / "a.ppma").string();
    {
        serve::ResultArchive ar(archive, ctx());
        for (const auto &p : points)
            ar.append(makeKey(p), truth(space, p));
    }
    train::OnlineTrainerOptions opts = baseOptions();
    opts.out_path = (dir / "model.ppmm").string();
    train::OnlineTrainer trainer(space, opts);
    trainer.addArchive(archive);
    trainer.setArmed(false);

    EXPECT_EQ(trainer.step(), 12u);
    EXPECT_TRUE(trainer.hasModel())
        << "disarmed trainers keep training";
    EXPECT_EQ(trainer.publishes(), 0u);
    EXPECT_FALSE(fs::exists(opts.out_path))
        << "disarmed trainer touched the snapshot";

    trainer.setArmed(true);
    EXPECT_EQ(trainer.step(), 0u) << "no fresh points needed";
    EXPECT_EQ(trainer.publishes(), 1u);
    const serve::ModelSnapshot snap =
        serve::loadSnapshot(opts.out_path);
    EXPECT_EQ(snap.model_version, 1u);
    EXPECT_EQ(snap.train_points, 12u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Adaptive acquisition bandwidth (PR 3 leftover)
// ---------------------------------------------------------------------

TEST(AdaptedKernelBandwidth, ContractsWithSampleGrowth)
{
    const double base9 = 0.25 * std::sqrt(9.0);
    EXPECT_DOUBLE_EQ(sampling::adaptedKernelBandwidth(9, 0), base9);
    EXPECT_DOUBLE_EQ(sampling::adaptedKernelBandwidth(9, 16), base9);
    EXPECT_DOUBLE_EQ(
        sampling::adaptedKernelBandwidth(9, 32),
        std::pow(16.0 / 32.0, 1.0 / 9.0) * base9);

    // Monotone non-increasing past the reference occupancy.
    double prev = sampling::adaptedKernelBandwidth(9, 16);
    for (std::size_t n = 17; n <= 4096; n += 7) {
        const double bw = sampling::adaptedKernelBandwidth(9, n);
        EXPECT_LE(bw, prev) << "n=" << n;
        EXPECT_GT(bw, 0.0);
        prev = bw;
    }
    // Floored at a fifth of the base scale.
    EXPECT_DOUBLE_EQ(
        sampling::adaptedKernelBandwidth(9, 1'000'000'000),
        0.2 * base9);
    // Dimension guard.
    EXPECT_DOUBLE_EQ(sampling::adaptedKernelBandwidth(0, 4),
                     0.25 * std::sqrt(1.0));
}

TEST(AdaptedKernelBandwidth, FeedsDeterminantalDefault)
{
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    math::Rng rng(5);
    std::vector<dspace::UnitPoint> occupied;
    for (int i = 0; i < 40; ++i)
        occupied.push_back(space.toUnit(space.randomPoint(rng)));
    sampling::BatchAcquisitionOptions opts;
    opts.batch_size = 4;
    opts.candidate_pool = 64;
    opts.kernel_bandwidth = 0.0; // adapted default
    const auto batch = sampling::acquireBatch(
        sampling::BatchStrategy::Determinantal, space, occupied,
        [](const dspace::UnitPoint &) { return 0.0; }, opts, rng);
    EXPECT_EQ(batch.points.size(), 4u);
    EXPECT_GT(batch.stats.batch_min_distance, 0.0)
        << "adapted bandwidth should still repel duplicate picks";
}

} // namespace
