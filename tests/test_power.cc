/**
 * @file
 * Unit tests for the activity-based energy model and the
 * energy-metric oracles.
 */

#include <gtest/gtest.h>

#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "sim/power.hh"
#include "sim/simulator.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace {

using namespace ppm;
using namespace ppm::sim;

SimStats
statsFor(const ProcessorConfig &cfg, const std::string &bench = "twolf")
{
    static const trace::Trace tr =
        trace::generateTrace(trace::profileByName(bench), 30000);
    SimOptions opts;
    opts.warmup_instructions = 0;
    return simulate(tr, cfg, opts);
}

TEST(PowerModel, BreakdownSumsToTotal)
{
    ProcessorConfig cfg;
    const auto stats = statsFor(cfg);
    const auto report = computePower(cfg, stats);
    const double sum = report.fetch + report.window + report.execute +
        report.dcache + report.l2 + report.memory + report.leakage;
    EXPECT_NEAR(report.total(), sum, 1e-9);
    EXPECT_GT(report.total(), 0.0);
}

TEST(PowerModel, AllComponentsPositiveOnRealWorkload)
{
    ProcessorConfig cfg;
    const auto stats = statsFor(cfg);
    const auto report = computePower(cfg, stats);
    EXPECT_GT(report.fetch, 0.0);
    EXPECT_GT(report.window, 0.0);
    EXPECT_GT(report.execute, 0.0);
    EXPECT_GT(report.dcache, 0.0);
    EXPECT_GT(report.l2, 0.0);
    EXPECT_GT(report.memory, 0.0);
    EXPECT_GT(report.leakage, 0.0);
}

TEST(PowerModel, CacheEnergyScalesWithSqrtCapacity)
{
    PowerParams params;
    const double e8 = cacheAccessEnergy(8, params);
    const double e32 = cacheAccessEnergy(32, params);
    EXPECT_NEAR(e32 / e8, 2.0, 1e-9); // sqrt(32/8) = 2
}

TEST(PowerModel, BiggerCachesCostMoreEnergyPerAccessAndLeakage)
{
    ProcessorConfig small;
    small.l2_size_kb = 256;
    ProcessorConfig big;
    big.l2_size_kb = 8192;
    const auto s_stats = statsFor(small);
    const auto b_stats = statsFor(big);
    const auto s_rep = computePower(small, s_stats);
    const auto b_rep = computePower(big, b_stats);
    // Leakage per cycle is much larger for the big L2.
    EXPECT_GT(b_rep.leakage / static_cast<double>(b_stats.cycles),
              s_rep.leakage / static_cast<double>(s_stats.cycles) * 4);
}

TEST(PowerModel, BiggerWindowCostsMoreWindowEnergy)
{
    ProcessorConfig small;
    small.rob_size = 24;
    small.iq_size = 8;
    small.lsq_size = 8;
    ProcessorConfig big;
    big.rob_size = 128;
    big.iq_size = 96;
    big.lsq_size = 96;
    const auto s = computePower(small, statsFor(small));
    const auto b = computePower(big, statsFor(big));
    const auto s_stats = statsFor(small);
    const auto b_stats = statsFor(big);
    EXPECT_GT(b.window / static_cast<double>(b_stats.instructions),
              s.window / static_cast<double>(s_stats.instructions));
}

TEST(PowerModel, DeeperPipeCostsMoreFetchEnergy)
{
    ProcessorConfig shallow;
    shallow.pipe_depth = 7;
    ProcessorConfig deep;
    deep.pipe_depth = 24;
    const auto s_stats = statsFor(shallow);
    const auto d_stats = statsFor(deep);
    const auto s = computePower(shallow, s_stats);
    const auto d = computePower(deep, d_stats);
    EXPECT_GT(d.fetch / static_cast<double>(d_stats.instructions),
              s.fetch / static_cast<double>(s_stats.instructions));
}

TEST(PowerModel, MemoryBoundWorkloadSpendsMoreInMemory)
{
    ProcessorConfig cfg;
    static const trace::Trace mcf =
        trace::generateTrace(trace::profileByName("mcf"), 30000);
    static const trace::Trace crafty =
        trace::generateTrace(trace::profileByName("crafty"), 30000);
    SimOptions opts;
    opts.warmup_instructions = 0;
    const auto mcf_stats = simulate(mcf, cfg, opts);
    const auto crafty_stats = simulate(crafty, cfg, opts);
    const auto mcf_rep = computePower(cfg, mcf_stats);
    const auto crafty_rep = computePower(cfg, crafty_stats);
    EXPECT_GT(mcf_rep.memory / mcf_rep.total(),
              crafty_rep.memory / crafty_rep.total());
}

TEST(PowerModel, EpiAndEd2pDefinitions)
{
    ProcessorConfig cfg;
    const auto stats = statsFor(cfg);
    const auto rep = computePower(cfg, stats);
    EXPECT_NEAR(rep.epi(stats),
                rep.total() / static_cast<double>(stats.instructions),
                1e-12);
    EXPECT_NEAR(rep.ed2p(stats),
                rep.epi(stats) * stats.cpi() * stats.cpi(), 1e-12);
}

// --- metric oracles ------------------------------------------------------

TEST(MetricOracle, Names)
{
    EXPECT_EQ(core::metricName(core::Metric::Cpi), "CPI");
    EXPECT_EQ(core::metricName(core::Metric::EnergyPerInst), "EPI");
    EXPECT_EQ(core::metricName(core::Metric::EnergyDelaySquared),
              "ED2P");
}

TEST(MetricOracle, EpiOracleReportsEnergy)
{
    auto space = dspace::paperTrainSpace();
    static const trace::Trace tr =
        trace::generateTrace(trace::profileByName("twolf"), 20000);
    core::SimulatorOracle cpi_oracle(space, tr);
    core::SimulatorOracle epi_oracle(space, tr, {},
                                     core::Metric::EnergyPerInst);
    dspace::DesignPoint pt{14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2};
    const double cpi = cpi_oracle.cpi(pt);
    const double epi = epi_oracle.cpi(pt);
    EXPECT_GT(epi, 0.0);
    EXPECT_NE(epi, cpi);
    EXPECT_EQ(epi_oracle.metric(), core::Metric::EnergyPerInst);
}

TEST(MetricOracle, EpiModelBuilds)
{
    // The paper's extension: the same BuildRBFmodel machinery models
    // energy instead of CPI.
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    static const trace::Trace tr =
        trace::generateTrace(trace::profileByName("twolf"), 20000);
    core::SimulatorOracle oracle(train, tr, {},
                                 core::Metric::EnergyPerInst);
    core::ModelBuilder builder(train, test, oracle);
    core::BuildOptions opts;
    opts.sample_sizes = {40};
    opts.target_mean_error = 0.0;
    opts.num_test_points = 15;
    opts.lhs_candidates = 10;
    opts.trainer.p_min_grid = {1};
    opts.trainer.alpha_grid = {6, 10};
    auto result = builder.build(opts);
    EXPECT_LT(result.final().rbf_error.mean_error, 30.0);
}

TEST(MetricOracle, Ed2pCombinesBothMetrics)
{
    auto space = dspace::paperTrainSpace();
    static const trace::Trace tr =
        trace::generateTrace(trace::profileByName("parser"), 20000);
    core::SimulatorOracle cpi_o(space, tr);
    core::SimulatorOracle epi_o(space, tr, {},
                                core::Metric::EnergyPerInst);
    core::SimulatorOracle ed2p_o(space, tr, {},
                                 core::Metric::EnergyDelaySquared);
    dspace::DesignPoint pt{14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2};
    const double cpi = cpi_o.cpi(pt);
    const double epi = epi_o.cpi(pt);
    const double ed2p = ed2p_o.cpi(pt);
    EXPECT_NEAR(ed2p, epi * cpi * cpi, 1e-9);
}

} // namespace
