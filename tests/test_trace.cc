/**
 * @file
 * Unit tests for the synthetic workload substrate: profiles, trace
 * generation determinism, mix fidelity, control-flow consistency and
 * footprint behaviour.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace {

using namespace ppm::trace;

TEST(Profiles, EightPaperBenchmarks)
{
    const auto &profiles = spec2000Profiles();
    ASSERT_EQ(profiles.size(), 8u);
    const std::vector<std::string> expected = {
        "181.mcf",    "186.crafty", "197.parser", "253.perlbmk",
        "255.vortex", "300.twolf",  "183.equake", "188.ammp",
    };
    EXPECT_EQ(profileNames(), expected);
}

TEST(Profiles, LookupByFullAndShortName)
{
    EXPECT_EQ(profileByName("181.mcf").name, "181.mcf");
    EXPECT_EQ(profileByName("mcf").name, "181.mcf");
    EXPECT_EQ(profileByName("vortex").name, "255.vortex");
    EXPECT_THROW(profileByName("gcc"), std::out_of_range);
}

TEST(Profiles, SeedsAreDistinct)
{
    std::unordered_set<std::uint64_t> seeds;
    for (const auto &p : spec2000Profiles())
        seeds.insert(p.seed);
    EXPECT_EQ(seeds.size(), spec2000Profiles().size());
}

TEST(Profiles, FractionsAreSane)
{
    for (const auto &p : spec2000Profiles()) {
        EXPECT_GT(p.mix.load, 0.0) << p.name;
        EXPECT_LT(p.mix.load + p.mix.store + p.mix.branch, 1.0)
            << p.name;
        EXPECT_GE(p.data.streaming_fraction +
                      p.data.pointer_chase_fraction, 0.0);
        EXPECT_LE(p.data.streaming_fraction +
                      p.data.pointer_chase_fraction, 1.0)
            << p.name;
        EXPECT_GT(p.code.footprint_bytes, 0u);
        EXPECT_GT(p.data.footprint_bytes, 0u);
    }
}

TEST(Generator, Deterministic)
{
    const auto &p = profileByName("mcf");
    Trace a = generateTrace(p, 5000);
    Trace b = generateTrace(p, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].mem_addr, b[i].mem_addr);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(Generator, PrefixStability)
{
    // A longer trace starts with the shorter trace.
    const auto &p = profileByName("twolf");
    Trace small = generateTrace(p, 2000);
    Trace big = generateTrace(p, 4000);
    for (std::size_t i = 0; i < small.size(); ++i)
        EXPECT_EQ(small[i].pc, big[i].pc) << i;
}

TEST(Generator, RequestedLength)
{
    for (std::size_t n : {1u, 100u, 12345u})
        EXPECT_EQ(generateTrace(profileByName("parser"), n).size(), n);
}

TEST(Generator, MixMatchesProfile)
{
    for (const auto &p : spec2000Profiles()) {
        Trace t = generateTrace(p, 100000);
        TraceSummary s = t.summarize();
        const double n = static_cast<double>(s.instructions);
        EXPECT_NEAR(s.loads / n, p.mix.load, 0.05) << p.name;
        EXPECT_NEAR(s.stores / n, p.mix.store, 0.04) << p.name;
        EXPECT_NEAR(s.branches / n, p.mix.branch, 0.08) << p.name;
    }
}

TEST(Generator, FpBenchmarksHaveFpOps)
{
    Trace eq = generateTrace(profileByName("equake"), 50000);
    Trace mcf = generateTrace(profileByName("mcf"), 50000);
    EXPECT_GT(eq.summarize().fp_ops, 10000u);
    EXPECT_EQ(mcf.summarize().fp_ops, 0u);
}

TEST(Generator, BranchOutcomesConsistentWithControlFlow)
{
    // For every branch: taken -> next PC equals branch_target;
    // not taken -> next PC is the fall-through (pc + 4).
    Trace t = generateTrace(profileByName("vortex"), 50000);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        const auto &inst = t[i];
        if (!inst.isBr())
            continue;
        const auto &next = t[i + 1];
        if (inst.taken)
            EXPECT_EQ(next.pc, inst.branch_target) << "at " << i;
        else
            EXPECT_EQ(next.pc, inst.pc + 4) << "at " << i;
    }
}

TEST(Generator, NonBranchesFallThrough)
{
    Trace t = generateTrace(profileByName("crafty"), 20000);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].isBr()) {
            EXPECT_EQ(t[i + 1].pc, t[i].pc + 4) << "at " << i;
        }
    }
}

TEST(Generator, MemoryOpsHaveAddressesInDataSegment)
{
    Trace t = generateTrace(profileByName("ammp"), 30000);
    for (std::size_t i = 0; i < t.size(); ++i) {
        const auto &inst = t[i];
        if (inst.isMem()) {
            EXPECT_GE(inst.mem_addr, kDataBase) << i;
        } else {
            EXPECT_EQ(inst.mem_addr, 0u) << i;
        }
    }
}

TEST(Generator, PcsInCodeSegment)
{
    Trace t = generateTrace(profileByName("parser"), 10000);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i].pc, kCodeBase);
        EXPECT_LT(t[i].pc, kDataBase);
        EXPECT_EQ(t[i].pc % 4, 0u);
    }
}

TEST(Generator, CodeFootprintScalesWithProfile)
{
    // vortex (384KB static) must touch far more code than mcf (24KB).
    const auto mcf = generateTrace(profileByName("mcf"), 100000)
                         .summarize().unique_code_lines;
    const auto vortex = generateTrace(profileByName("vortex"), 100000)
                            .summarize().unique_code_lines;
    EXPECT_GT(vortex, 4 * mcf);
}

TEST(Generator, DataFootprintScalesWithProfile)
{
    const auto crafty = generateTrace(profileByName("crafty"), 100000)
                            .summarize().unique_data_lines;
    const auto mcf = generateTrace(profileByName("mcf"), 100000)
                         .summarize().unique_data_lines;
    EXPECT_GT(mcf, 2 * crafty);
}

TEST(Generator, ChaseLoadsAreSerialized)
{
    // mcf must contain load-to-load chains through the chase register.
    Trace t = generateTrace(profileByName("mcf"), 50000);
    std::size_t chained = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const auto &inst = t[i];
        if (inst.isLoad() && inst.dest == 1 && inst.src[0] == 1)
            ++chained;
    }
    EXPECT_GT(chained, 500u);
}

TEST(Generator, RegistersWithinBounds)
{
    Trace t = generateTrace(profileByName("perlbmk"), 20000);
    for (std::size_t i = 0; i < t.size(); ++i) {
        const auto &inst = t[i];
        for (RegId r : inst.src)
            EXPECT_TRUE(r == kNoReg || r < kNumArchRegs);
        EXPECT_TRUE(inst.dest == kNoReg || inst.dest < kNumArchRegs);
    }
}

TEST(Generator, BranchPredictabilityOrdering)
{
    // FP codes (long, counted loops; few weak branches) must have a
    // higher fraction of taken branches from loops than perlbmk.
    Trace eq = generateTrace(profileByName("equake"), 100000);
    Trace pb = generateTrace(profileByName("perlbmk"), 100000);
    const auto se = eq.summarize();
    const auto sp = pb.summarize();
    const double eq_taken =
        static_cast<double>(se.taken_branches) / se.branches;
    EXPECT_GT(eq_taken, 0.4);
    EXPECT_GT(sp.cond_branches, 0u);
}

TEST(TraceSummary, CountsAddUp)
{
    Trace t = generateTrace(profileByName("twolf"), 30000);
    TraceSummary s = t.summarize();
    EXPECT_EQ(s.instructions, 30000u);
    EXPECT_LE(s.cond_branches, s.branches);
    EXPECT_LE(s.taken_branches, s.branches);
    EXPECT_GT(s.unique_code_lines, 0u);
    EXPECT_GT(s.unique_data_lines, 0u);
}

TEST(OpClassNames, AllDistinct)
{
    std::unordered_set<std::string> names;
    for (int op = 0; op <= static_cast<int>(OpClass::BranchRet); ++op)
        names.insert(opClassName(static_cast<OpClass>(op)));
    EXPECT_EQ(names.size(), 12u);
}

} // namespace
