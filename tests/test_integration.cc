/**
 * @file
 * Integration tests: the full pipeline — synthetic trace, cycle-level
 * simulation, LHS sampling, tree/RBF model construction, validation —
 * run end to end on real (if shortened) workloads. These are the
 * miniature versions of the paper's experiments.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/explorer.hh"
#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "math/rng.hh"
#include "sampling/sample_gen.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"
#include "tree/split_report.hh"

namespace {

using namespace ppm;
using namespace ppm::core;

constexpr std::size_t kTraceLength = 40000;

/** Shared fixture: one trace + oracle per benchmark, reused. */
class IntegrationTest : public ::testing::Test
{
  protected:
    static SimulatorOracle &
    oracleFor(const std::string &name)
    {
        static std::map<std::string,
                        std::unique_ptr<trace::Trace>> traces;
        static std::map<std::string,
                        std::unique_ptr<SimulatorOracle>> oracles;
        auto it = oracles.find(name);
        if (it == oracles.end()) {
            auto trace = std::make_unique<trace::Trace>(
                trace::generateTrace(trace::profileByName(name),
                                     kTraceLength));
            static dspace::DesignSpace space =
                dspace::paperTrainSpace();
            sim::SimOptions opts;
            opts.warmup_instructions = 5000;
            auto oracle = std::make_unique<SimulatorOracle>(
                space, *trace, opts);
            traces.emplace(name, std::move(trace));
            it = oracles.emplace(name, std::move(oracle)).first;
        }
        return *it->second;
    }
};

TEST_F(IntegrationTest, SimulatedCpiInPlausibleRange)
{
    auto space = dspace::paperTrainSpace();
    math::Rng rng(1);
    auto &oracle = oracleFor("twolf");
    for (int i = 0; i < 5; ++i) {
        const double cpi = oracle.cpi(space.randomPoint(rng));
        EXPECT_GT(cpi, 0.2);
        EXPECT_LT(cpi, 40.0);
    }
}

TEST_F(IntegrationTest, BetterMachineNeverSlower)
{
    // A strictly better configuration in every parameter must not
    // have (meaningfully) higher CPI.
    auto &oracle = oracleFor("parser");
    const double worst =
        oracle.cpi({24, 24, 0.25, 0.25, 256, 20, 8, 8, 4});
    const double best =
        oracle.cpi({7, 128, 0.75, 0.75, 8192, 5, 64, 64, 1});
    EXPECT_LT(best, worst);
}

TEST_F(IntegrationTest, BuildSmallRbfModelOnRealSimulator)
{
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    auto &oracle = oracleFor("twolf");
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {40};
    opts.target_mean_error = 0.0;
    opts.num_test_points = 20;
    opts.lhs_candidates = 20;
    opts.trainer.p_min_grid = {1, 2};
    opts.trainer.alpha_grid = {4, 8};
    auto result = builder.build(opts);
    ASSERT_NE(result.model, nullptr);
    // Small sample on a real simulator: generous bound, but the model
    // must clearly beat a wild guess.
    EXPECT_LT(result.final().rbf_error.mean_error, 25.0);
    EXPECT_GT(result.final().num_centers, 0u);
}

TEST_F(IntegrationTest, RbfBeatsLinearOnRealResponse)
{
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    auto &oracle = oracleFor("mcf");
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {60};
    opts.target_mean_error = 0.0;
    opts.num_test_points = 25;
    opts.lhs_candidates = 20;
    opts.fit_linear_baseline = true;
    opts.trainer.p_min_grid = {1, 2};
    opts.trainer.alpha_grid = {4, 8, 12};
    auto result = builder.build(opts);
    const auto &h = result.final();
    // The paper's central comparison (Fig 7): nonlinear wins.
    EXPECT_LT(h.rbf_error.mean_error, h.linear_error.mean_error * 1.1);
}

TEST_F(IntegrationTest, TreeSplitsIdentifyMemoryParamsForMcf)
{
    // Paper Table 5: mcf's most significant splits are memory-system
    // parameters (L2_lat, dl1_lat, L2_size). Build a tree on real
    // simulation data and check the top split is one of them.
    auto space = dspace::paperTrainSpace();
    auto &oracle = oracleFor("mcf");
    math::Rng rng(3);
    auto sample = sampling::bestLatinHypercube(space, 60, 10, rng);
    auto ys = oracle.cpiAll(sample.points);
    std::vector<dspace::UnitPoint> unit;
    for (const auto &p : sample.points)
        unit.push_back(space.toUnit(p));
    tree::RegressionTree t(unit, ys, 2);
    auto top = tree::significantSplits(t, space, 4);
    ASSERT_GE(top.size(), 3u);
    auto is_memory = [](const std::string &p) {
        return p == "L2_lat" || p == "dl1_lat" || p == "L2_size" ||
            p == "dl1_size";
    };
    int memory_splits = 0;
    for (const auto &split : top)
        memory_splits += is_memory(split.parameter);
    // Paper Table 5: L2_lat is mcf's most significant split and
    // memory-system parameters dominate the early tree.
    EXPECT_TRUE(is_memory(top.front().parameter) || memory_splits >= 2)
        << "top splits: " << top[0].parameter << ", "
        << top[1].parameter << ", " << top[2].parameter;
}

TEST_F(IntegrationTest, ModelPredictsHeldOutTrend)
{
    // Sweep dl1_lat through the model and through the simulator:
    // both must rise, and the model must get the direction right.
    auto train = dspace::paperTrainSpace();
    auto &oracle = oracleFor("twolf");
    ModelBuilder builder(train, train, oracle);
    BuildOptions opts;
    opts.sample_sizes = {90};
    opts.target_mean_error = 0.0;
    opts.num_test_points = 15;
    opts.lhs_candidates = 20;
    auto result = builder.build(opts);

    dspace::DesignPoint base{14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2};
    // L2 latency has a strong monotone effect: the model must get
    // the direction strictly right.
    auto sweep = sweepParameter(*result.model, train, base,
                                dspace::kL2Lat, 4);
    EXPECT_LT(sweep.front().predicted_cpi, sweep.back().predicted_cpi);
    // The weaker dl1_lat trend must at least not be inverted.
    auto dl1_sweep = sweepParameter(*result.model, train, base,
                                    dspace::kDl1Lat, 4);
    EXPECT_LE(dl1_sweep.front().predicted_cpi,
              dl1_sweep.back().predicted_cpi + 0.05);

    dspace::DesignPoint lo = base, hi = base;
    lo[dspace::kDl1Lat] = 1;
    hi[dspace::kDl1Lat] = 4;
    EXPECT_LT(oracle.cpi(lo), oracle.cpi(hi));
}

TEST_F(IntegrationTest, OracleCacheMakesRepeatBuildsCheap)
{
    auto train = dspace::paperTrainSpace();
    auto &oracle = oracleFor("twolf");
    ModelBuilder builder(train, train, oracle);
    BuildOptions opts;
    opts.sample_sizes = {30};
    opts.target_mean_error = 0.0;
    opts.num_test_points = 10;
    opts.lhs_candidates = 5;
    opts.seed = 77;
    auto first = builder.build(opts);
    const auto evals_after_first = oracle.evaluations();
    auto second = builder.build(opts); // same seed: identical points
    EXPECT_EQ(oracle.evaluations(), evals_after_first);
    EXPECT_NEAR(first.final().rbf_error.mean_error,
                second.final().rbf_error.mean_error, 1e-9);
}

} // namespace
