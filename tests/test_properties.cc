/**
 * @file
 * Property-based tests: invariants that must hold across swept
 * parameter ranges, expressed with parameterized gtest suites.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dspace/paper_space.hh"
#include "math/rng.hh"
#include "rbf/criteria.hh"
#include "rbf/rbf_rt.hh"
#include "sampling/discrepancy.hh"
#include "sampling/latin_hypercube.hh"
#include "sampling/sample_gen.hh"
#include "sim/cache.hh"
#include "sim/simulator.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"
#include "tree/regression_tree.hh"

namespace {

using namespace ppm;

// --- LHS stratification holds for every sample size --------------------

class LhsSizeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LhsSizeProperty, EveryDimensionStratified)
{
    const int p = GetParam();
    dspace::DesignSpace space;
    for (int k = 0; k < 5; ++k)
        space.add(dspace::Parameter("p" + std::to_string(k), 0, 1,
                                    dspace::kSampleSizeLevels,
                                    dspace::Transform::Linear, false));
    math::Rng rng(100 + static_cast<std::uint64_t>(p));
    sampling::LhsOptions opts;
    opts.snap_to_levels = false;
    auto sample = sampling::latinHypercubeSample(space, p, rng, opts);
    ASSERT_EQ(sample.size(), static_cast<std::size_t>(p));
    for (std::size_t k = 0; k < space.size(); ++k) {
        std::vector<bool> hit(static_cast<std::size_t>(p), false);
        for (const auto &pt : sample) {
            const int stratum = std::min(
                p - 1, static_cast<int>(pt[k] * p));
            hit[static_cast<std::size_t>(stratum)] = true;
        }
        for (int s = 0; s < p; ++s)
            EXPECT_TRUE(hit[static_cast<std::size_t>(s)])
                << "size " << p << " dim " << k << " stratum " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LhsSizeProperty,
                         ::testing::Values(10, 30, 50, 90, 110, 200));

// --- tree invariants hold for every p_min -------------------------------

class TreePminProperty : public ::testing::TestWithParam<int>
{
  protected:
    void
    SetUp() override
    {
        math::Rng rng(7);
        for (int i = 0; i < 120; ++i) {
            xs_.push_back({rng.uniform(), rng.uniform(),
                           rng.uniform()});
            ys_.push_back(std::sin(4 * xs_.back()[0]) +
                          xs_.back()[1] * xs_.back()[2]);
        }
    }

    std::vector<dspace::UnitPoint> xs_;
    std::vector<double> ys_;
};

TEST_P(TreePminProperty, LeavesRespectPmin)
{
    tree::RegressionTree t(xs_, ys_, GetParam());
    for (const auto &node : t.nodes()) {
        if (node.is_leaf) {
            EXPECT_LE(node.count,
                      static_cast<std::size_t>(GetParam()));
        }
    }
}

TEST_P(TreePminProperty, NodeCountConsistency)
{
    tree::RegressionTree t(xs_, ys_, GetParam());
    // Binary tree: nodes = 2 * splits + 1, leaves = splits + 1.
    EXPECT_EQ(t.nodeCount(), 2 * t.splits().size() + 1);
    EXPECT_EQ(t.leafCount(), t.splits().size() + 1);
}

TEST_P(TreePminProperty, PredictionWithinResponseRange)
{
    tree::RegressionTree t(xs_, ys_, GetParam());
    const double lo = *std::min_element(ys_.begin(), ys_.end());
    const double hi = *std::max_element(ys_.begin(), ys_.end());
    math::Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        const dspace::UnitPoint x{rng.uniform(), rng.uniform(),
                                  rng.uniform()};
        const double pred = t.predict(x);
        EXPECT_GE(pred, lo - 1e-12);
        EXPECT_LE(pred, hi + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Pmins, TreePminProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

// --- training error shrinks as p_min shrinks ----------------------------

TEST(TreeProperty, TrainSseMonotoneInPmin)
{
    math::Rng rng(13);
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    for (int i = 0; i < 150; ++i) {
        xs.push_back({rng.uniform(), rng.uniform()});
        ys.push_back(std::cos(5 * xs.back()[0]) + xs.back()[1]);
    }
    double prev = -1.0;
    for (int p_min : {1, 4, 16, 64}) {
        tree::RegressionTree t(xs, ys, p_min);
        double sse = 0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double e = ys[i] - t.predict(xs[i]);
            sse += e * e;
        }
        if (prev >= 0) {
            EXPECT_GE(sse, prev - 1e-9) << p_min;
        }
        prev = sse;
    }
}

// --- RBF invariants hold across alpha ------------------------------------

class RbfAlphaProperty : public ::testing::TestWithParam<double>
{
  protected:
    void
    SetUp() override
    {
        math::Rng rng(17);
        for (int i = 0; i < 80; ++i) {
            xs_.push_back({rng.uniform(), rng.uniform()});
            ys_.push_back(2.0 + xs_.back()[0] +
                          std::sin(3 * xs_.back()[1]));
        }
    }

    std::vector<dspace::UnitPoint> xs_;
    std::vector<double> ys_;
};

TEST_P(RbfAlphaProperty, BuildsFiniteGeneralizingModel)
{
    tree::RegressionTree t(xs_, ys_, 2);
    rbf::RbfRtOptions opts;
    opts.alpha = GetParam();
    auto result = rbf::buildRbfFromTree(t, xs_, ys_, opts);
    ASSERT_FALSE(result.network.empty());
    EXPECT_GE(result.train_sse, 0.0);
    math::Rng rng(19);
    for (int i = 0; i < 30; ++i) {
        const double pred = result.network.predict(
            {rng.uniform(), rng.uniform()});
        EXPECT_TRUE(std::isfinite(pred));
        // Sane extrapolation bound: within 5x the response spread.
        EXPECT_LT(std::fabs(pred), 50.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, RbfAlphaProperty,
                         ::testing::Values(1.0, 2.0, 5.0, 8.0, 12.0));

// --- criteria monotone in fit quality for all criteria -------------------

class CriterionProperty
    : public ::testing::TestWithParam<rbf::Criterion>
{
};

TEST_P(CriterionProperty, MonotoneInSse)
{
    const auto c = GetParam();
    double prev = -1e300;
    for (double sse : {0.1, 1.0, 10.0, 100.0}) {
        const double v = rbf::evaluateCriterion(c, 100, 10, sse);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST_P(CriterionProperty, PenalizesParametersAtFixedSse)
{
    const auto c = GetParam();
    const double small = rbf::evaluateCriterion(c, 100, 5, 3.0);
    const double large = rbf::evaluateCriterion(c, 100, 50, 3.0);
    EXPECT_LT(small, large);
}

INSTANTIATE_TEST_SUITE_P(All, CriterionProperty,
                         ::testing::Values(rbf::Criterion::AICc,
                                           rbf::Criterion::BIC,
                                           rbf::Criterion::GCV));

// --- cache miss rate monotone in capacity for several workloads ----------

class CacheCapacityProperty
    : public ::testing::TestWithParam<int> // associativity
{
};

TEST_P(CacheCapacityProperty, MissRateNonIncreasingWithCapacity)
{
    const int assoc = GetParam();
    // A mixed streaming + looping address pattern.
    std::vector<std::uint64_t> addrs;
    std::uint64_t x = 5;
    for (int i = 0; i < 30000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        if (i % 3 == 0)
            addrs.push_back((x >> 16) % (512 * 1024));
        else
            addrs.push_back((i % 2048) * 64);
    }
    double prev = 1.1;
    for (std::uint64_t kb : {4, 8, 16, 32, 64, 128, 256}) {
        sim::Cache c("t", kb * 1024, assoc, 64);
        for (auto a : addrs)
            c.access(a, false);
        EXPECT_LE(c.stats().missRate(), prev + 0.02)
            << kb << "KB assoc " << assoc;
        prev = c.stats().missRate();
    }
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheCapacityProperty,
                         ::testing::Values(1, 2, 4, 8));

// --- simulator invariants across random configurations -------------------

class SimConfigProperty
    : public ::testing::TestWithParam<std::uint64_t> // seed
{
};

TEST_P(SimConfigProperty, EveryConfigCommitsEverythingWithSaneCpi)
{
    static trace::Trace tr =
        trace::generateTrace(trace::profileByName("twolf"), 15000);
    auto space = dspace::paperTrainSpace();
    math::Rng rng(GetParam());
    const auto pt = space.randomPoint(rng);
    sim::SimOptions opts;
    opts.warmup_instructions = 0;
    const auto stats = sim::simulate(tr, space, pt, opts);
    EXPECT_EQ(stats.instructions, tr.size());
    EXPECT_GT(stats.cpi(), 0.2) << space.describe(pt);
    EXPECT_LT(stats.cpi(), 60.0) << space.describe(pt);
    EXPECT_LE(stats.dl1.misses, stats.dl1.accesses);
    EXPECT_LE(stats.il1.misses, stats.il1.accesses);
    EXPECT_LE(stats.l2.misses, stats.l2.accesses);
    EXPECT_LE(stats.branch.mispredicts,
              stats.branch.branches);
    EXPECT_GE(stats.memory.requests, stats.memory.row_hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimConfigProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- discrepancy invariance properties -----------------------------------

class DiscrepancyDimProperty
    : public ::testing::TestWithParam<int> // dimensionality
{
};

TEST_P(DiscrepancyDimProperty, BestOfNNeverWorseThanSingle)
{
    const int d = GetParam();
    dspace::DesignSpace space;
    for (int k = 0; k < d; ++k)
        space.add(dspace::Parameter("p" + std::to_string(k), 0, 1,
                                    dspace::kSampleSizeLevels,
                                    dspace::Transform::Linear, false));
    math::Rng a(500 + static_cast<std::uint64_t>(d));
    math::Rng b(500 + static_cast<std::uint64_t>(d));
    auto one = sampling::bestLatinHypercube(space, 25, 1, a);
    auto ten = sampling::bestLatinHypercube(space, 25, 10, b);
    EXPECT_LE(ten.discrepancy, one.discrepancy);
}

INSTANTIATE_TEST_SUITE_P(Dims, DiscrepancyDimProperty,
                         ::testing::Values(2, 4, 6, 9));

} // namespace
