/**
 * @file
 * Unit tests for the adaptive sampler (the paper's proposed
 * simulation-cost reduction).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/adaptive.hh"
#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "util/thread_pool.hh"

namespace {

using namespace ppm;
using namespace ppm::core;

/** Smooth nonlinear response over the paper space. */
double
response(const dspace::DesignPoint &p)
{
    using namespace ppm::dspace;
    return 0.5 + 25.0 / p[kRobSize] + 0.25 * p[kDl1Lat] +
        300.0 / (p[kL2SizeKB] + 400.0) +
        0.003 * p[kL2Lat] * (64.0 / (p[kIl1SizeKB] + 8.0));
}

AdaptiveOptions
fastOptions()
{
    AdaptiveOptions opts;
    opts.initial_size = 25;
    opts.batch_size = 10;
    opts.max_samples = 95;
    opts.candidate_pool = 300;
    opts.num_test_points = 30;
    opts.lhs_candidates = 10;
    opts.trainer.p_min_grid = {1};
    opts.trainer.alpha_grid = {4, 8};
    return opts;
}

TEST(Adaptive, ConvergesOnSmoothResponse)
{
    // Both batch strategies must reach the error target on the
    // synthetic oracle.
    for (const auto strategy : {sampling::BatchStrategy::Determinantal,
                                sampling::BatchStrategy::Sequential}) {
        FunctionOracle oracle(response);
        auto train = dspace::paperTrainSpace();
        auto test = dspace::paperTestSpace();
        AdaptiveSampler sampler(train, test, oracle);
        auto opts = fastOptions();
        opts.batch_strategy = strategy;
        opts.target_mean_error = 4.0;
        auto result = sampler.build(opts);
        ASSERT_FALSE(result.history.empty());
        EXPECT_TRUE(result.converged)
            << sampling::batchStrategyName(strategy);
        EXPECT_LE(result.history.back().error.mean_error, 4.0);
        EXPECT_NE(result.model, nullptr);
    }
}

TEST(Adaptive, RespectsBudget)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    auto opts = fastOptions();
    opts.target_mean_error = 0.0; // unreachable
    auto result = sampler.build(opts);
    EXPECT_FALSE(result.converged);
    EXPECT_LE(static_cast<int>(result.sample.size()),
              opts.max_samples);
    EXPECT_EQ(result.sample.size(),
              static_cast<std::size_t>(opts.max_samples));
    // Simulations = test points + training points.
    EXPECT_EQ(result.simulations,
              static_cast<std::uint64_t>(opts.num_test_points) +
                  result.sample.size());
}

TEST(Adaptive, HistoryTracksGrowth)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    auto opts = fastOptions();
    opts.target_mean_error = 0.0;
    auto result = sampler.build(opts);
    ASSERT_GE(result.history.size(), 2u);
    EXPECT_EQ(result.history.front().samples, opts.initial_size);
    for (std::size_t i = 1; i < result.history.size(); ++i)
        EXPECT_EQ(result.history[i].samples,
                  result.history[i - 1].samples + opts.batch_size);
}

TEST(Adaptive, InfillPointsAreDistinctAndInSpace)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    auto opts = fastOptions();
    opts.target_mean_error = 0.0;
    auto result = sampler.build(opts);
    std::set<std::vector<double>> seen;
    for (const auto &p : result.sample) {
        EXPECT_TRUE(train.contains(p)) << train.describe(p);
        seen.insert(p);
    }
    // Essentially all points distinct (level snapping may rarely
    // collide).
    EXPECT_GE(seen.size(), result.sample.size() - 3);
}

TEST(Adaptive, ErrorImprovesOverRounds)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    auto opts = fastOptions();
    opts.target_mean_error = 0.0;
    auto result = sampler.build(opts);
    ASSERT_GE(result.history.size(), 3u);
    // Not strictly monotone, but the final model must beat the seed.
    EXPECT_LT(result.history.back().error.mean_error,
              result.history.front().error.mean_error);
}

TEST(Adaptive, RejectsBadOptions)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    AdaptiveOptions bad = fastOptions();
    bad.initial_size = 5;
    EXPECT_THROW(sampler.build(bad), std::invalid_argument);
    bad = fastOptions();
    bad.batch_size = 0;
    EXPECT_THROW(sampler.build(bad), std::invalid_argument);
    bad = fastOptions();
    bad.max_samples = bad.initial_size - 1;
    EXPECT_THROW(sampler.build(bad), std::invalid_argument);
    bad = fastOptions();
    bad.num_test_points = 0;
    EXPECT_THROW(sampler.build(bad), std::invalid_argument);
    // candidate_pool = 0 used to index an empty score vector (UB)
    // instead of throwing.
    bad = fastOptions();
    bad.candidate_pool = 0;
    EXPECT_THROW(sampler.build(bad), std::invalid_argument);
    bad = fastOptions();
    bad.lhs_candidates = 0;
    EXPECT_THROW(sampler.build(bad), std::invalid_argument);
    // Determinantal picks each pool candidate at most once, so the
    // pool must cover the batch.
    bad = fastOptions();
    bad.batch_strategy = sampling::BatchStrategy::Determinantal;
    bad.candidate_pool = bad.batch_size - 1;
    EXPECT_THROW(sampler.build(bad), std::invalid_argument);
}

TEST(Adaptive, DeterminantalScoresPoolOncePerRound)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    auto opts = fastOptions();
    opts.target_mean_error = 0.0;
    auto result = sampler.build(opts);
    ASSERT_GE(result.history.size(), 2u);
    // Round 0 is the LHS seed; every infill round scored the pool
    // exactly once, regardless of batch size.
    EXPECT_EQ(result.history.front().acquisition.pool_scored, 0u);
    for (std::size_t i = 1; i < result.history.size(); ++i) {
        const auto &acq = result.history[i].acquisition;
        EXPECT_EQ(acq.pool_scored,
                  static_cast<std::uint64_t>(opts.candidate_pool));
        EXPECT_GT(acq.kernel_evaluations, 0u);
    }
    // The oracle cost is unchanged: test points + training points.
    EXPECT_EQ(oracle.evaluations(),
              static_cast<std::uint64_t>(opts.num_test_points) +
                  result.sample.size());
}

TEST(Adaptive, SequentialScoresPoolPerPick)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    auto opts = fastOptions();
    opts.batch_strategy = sampling::BatchStrategy::Sequential;
    opts.target_mean_error = 0.0;
    auto result = sampler.build(opts);
    ASSERT_GE(result.history.size(), 2u);
    for (std::size_t i = 1; i < result.history.size(); ++i) {
        const auto &acq = result.history[i].acquisition;
        const int batch =
            result.history[i].samples - result.history[i - 1].samples;
        EXPECT_EQ(acq.pool_scored,
                  static_cast<std::uint64_t>(opts.candidate_pool) *
                      static_cast<std::uint64_t>(batch));
        EXPECT_EQ(acq.kernel_evaluations, 0u);
    }
}

TEST(Adaptive, DeterminantalBatchesAreDiverse)
{
    FunctionOracle oracle(response);
    auto train = dspace::paperTrainSpace();
    AdaptiveSampler sampler(train, train, oracle);
    auto opts = fastOptions();
    opts.target_mean_error = 0.0;
    auto result = sampler.build(opts);
    ASSERT_GE(result.history.size(), 2u);
    // Joint selection must not degenerate into duplicate picks: every
    // multi-point batch has a strictly positive minimum pairwise
    // distance in unit space.
    for (std::size_t i = 1; i < result.history.size(); ++i)
        EXPECT_GT(result.history[i].acquisition.batch_min_distance,
                  0.0)
            << "round " << i;
    std::set<std::vector<double>> seen;
    for (const auto &p : result.sample)
        seen.insert(p);
    EXPECT_GE(seen.size(), result.sample.size() - 3);
}

TEST(Adaptive, SelectionBitIdenticalAcrossThreadCounts)
{
    // The whole adaptive trajectory — candidate pools, joint
    // selection, refits — must be bit-identical for 1 and 4 threads.
    for (const auto strategy : {sampling::BatchStrategy::Determinantal,
                                sampling::BatchStrategy::Sequential}) {
        auto run = [&](unsigned threads) {
            util::setGlobalThreads(threads);
            FunctionOracle oracle(response);
            auto train = dspace::paperTrainSpace();
            AdaptiveSampler sampler(train, train, oracle);
            auto opts = fastOptions();
            opts.batch_strategy = strategy;
            opts.target_mean_error = 0.0;
            return sampler.build(opts);
        };
        const auto serial = run(1);
        const auto parallel = run(4);
        util::setGlobalThreads(0);
        EXPECT_EQ(serial.sample, parallel.sample)
            << sampling::batchStrategyName(strategy);
        ASSERT_EQ(serial.history.size(), parallel.history.size());
        for (std::size_t i = 0; i < serial.history.size(); ++i)
            EXPECT_EQ(serial.history[i].error.mean_error,
                      parallel.history[i].error.mean_error);
    }
}

TEST(Adaptive, MatchesLhsBudgetAccuracy)
{
    // At the same simulation budget the adaptive model should be in
    // the same accuracy class as a one-shot LHS build (usually
    // better; allow slack for noise).
    FunctionOracle oracle_a(response);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    AdaptiveSampler sampler(train, test, oracle_a);
    auto opts = fastOptions();
    opts.target_mean_error = 0.0;
    auto adaptive = sampler.build(opts);

    FunctionOracle oracle_b(response);
    ModelBuilder builder(train, test, oracle_b);
    BuildOptions fixed;
    fixed.sample_sizes = {opts.max_samples};
    fixed.target_mean_error = 0.0;
    fixed.num_test_points = opts.num_test_points;
    fixed.lhs_candidates = opts.lhs_candidates;
    fixed.trainer = opts.trainer;
    auto lhs = builder.build(fixed);

    EXPECT_LT(adaptive.history.back().error.mean_error,
              2.5 * lhs.final().rbf_error.mean_error + 1.0);
}

} // namespace
