/**
 * @file
 * ResultCache unit suite: meta-word packing, insert/lookup round
 * trips, the getOrCompute outcomes, deterministic second-chance
 * eviction on a single-group table, budget enforcement, dirty-entry
 * spill through a recording ResultStore, flushDirty semantics, the
 * pending-sentinel canonicalisation, and the env knobs.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cache/cell.hh"
#include "cache/result_cache.hh"
#include "core/result_store.hh"

namespace {

using namespace ppm;
using cache::CacheConfig;
using cache::Outcome;
using cache::ResultCache;
using Key = core::ResultStore::Key;

/** In-memory ResultStore that records every append. */
class RecordingStore : public core::ResultStore
{
  public:
    void
    load(const std::function<void(const Key &, double)> &sink) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[key, value] : records_)
            sink(key, value);
    }

    void
    append(const Key &key, double value) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        records_.emplace_back(key, value);
    }

    std::vector<std::pair<Key, double>>
    records() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return records_;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<Key, double>> records_;
};

/** Config for a table squeezed to one probe group (24 slots). */
CacheConfig
oneGroupConfig(std::size_t key_words = 2)
{
    CacheConfig config;
    config.key_words = key_words;
    config.budget_bytes = 1; // floors to a single group
    config.shards = 1;
    return config;
}

TEST(CacheMeta, PackingRoundTrips)
{
    std::uint64_t word = 0;
    for (unsigned slot = 0; slot < cache::kCellSlots; ++slot) {
        const std::uint64_t tag = (slot * 19 + 3) & 0x7F;
        word = cache::meta::withTag(word, slot, tag);
        word |= cache::meta::occupiedBit(slot);
        EXPECT_EQ(cache::meta::tag(word, slot), tag);
        EXPECT_TRUE(cache::meta::occupied(word, slot));
        EXPECT_FALSE(cache::meta::refSet(word, slot));
        word |= cache::meta::refBit(slot);
        EXPECT_TRUE(cache::meta::refSet(word, slot));
        EXPECT_FALSE(cache::meta::dirty(word, slot));
        word |= cache::meta::dirtyBit(slot);
        EXPECT_TRUE(cache::meta::dirty(word, slot));
    }
    // Tags survive the state bits of every other slot.
    for (unsigned slot = 0; slot < cache::kCellSlots; ++slot)
        EXPECT_EQ(cache::meta::tag(word, slot),
                  (slot * 19 + 3) & 0x7FULL);
    // Clearing one slot's mask leaves the others intact.
    const std::uint64_t cleared = word & ~cache::meta::slotMask(2);
    EXPECT_EQ(cache::meta::tag(cleared, 2), 0u);
    EXPECT_FALSE(cache::meta::occupied(cleared, 2));
    EXPECT_TRUE(cache::meta::occupied(cleared, 1));
    EXPECT_TRUE(cache::meta::dirty(cleared, 3));
}

TEST(CacheMeta, CellIsOneCacheLine)
{
    EXPECT_EQ(sizeof(cache::Cell), 64u);
}

TEST(CacheMeta, ContextWordPacksIdAndMetric)
{
    EXPECT_EQ(cache::contextWord(0, 0), 0);
    EXPECT_EQ(cache::contextWord(5, 2), (5 << 2) | 2);
    EXPECT_NE(cache::contextWord(1, 0), cache::contextWord(0, 1));
}

TEST(ResultCacheTest, InsertAndLookupRoundTrip)
{
    CacheConfig config;
    config.key_words = 3;
    config.budget_bytes = 1 << 20;
    ResultCache cache(config);

    for (std::int64_t i = 0; i < 100; ++i) {
        const Key key = {0, i, i * 7 + 1};
        EXPECT_TRUE(cache.insert(key, i * 0.25, false));
    }
    for (std::int64_t i = 0; i < 100; ++i) {
        const Key key = {0, i, i * 7 + 1};
        double value = 0.0;
        ASSERT_TRUE(cache.lookup(key, &value)) << "key " << i;
        EXPECT_EQ(value, i * 0.25);
    }
    double value = 0.0;
    EXPECT_FALSE(cache.lookup({1, 0, 1}, &value));
    EXPECT_EQ(cache.liveEntries(), 100u);
    // Re-inserting an existing key is not a new placement.
    EXPECT_FALSE(cache.insert({0, 0, 1}, 9.0, false));
    ASSERT_TRUE(cache.lookup({0, 0, 1}, &value));
    EXPECT_EQ(value, 0.0) << "first value wins";
}

TEST(ResultCacheTest, LookupBatchMatchesSingleLookups)
{
    CacheConfig config;
    config.key_words = 3;
    config.budget_bytes = 1 << 20;
    ResultCache cache(config);

    for (std::int64_t i = 0; i < 200; ++i)
        cache.insert({0, i, i * 7 + 1}, i * 0.5, false);

    // A batch mixing hits, misses, and duplicates — longer than the
    // pipeline depth so the rolling prefetch window wraps.
    std::vector<Key> keys;
    for (std::int64_t i = 0; i < 100; ++i) {
        keys.push_back({0, i * 2, i * 2 * 7 + 1}); // present
        keys.push_back({1, i, i * 7 + 1});         // absent
    }
    keys.push_back(keys.front());

    const auto before = cache.stats();
    std::vector<double> values(keys.size(), -1.0);
    const auto found = std::make_unique<bool[]>(keys.size());
    const std::size_t hits = cache.lookupBatch(
        keys.data(), keys.size(), values.data(), found.get());

    std::size_t expected_hits = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        double single = 0.0;
        const bool present = cache.lookup(keys[i], &single);
        EXPECT_EQ(found[i], present) << "key " << i;
        EXPECT_EQ(values[i], present ? single : 0.0) << "key " << i;
        expected_hits += present;
    }
    EXPECT_EQ(hits, expected_hits);
    EXPECT_EQ(hits, 101u);

    // The batch and the per-key re-checks each counted every probe.
    const auto after = cache.stats();
    EXPECT_EQ(after.hits - before.hits, 2 * hits);
    EXPECT_EQ(after.misses - before.misses,
              2 * (keys.size() - hits));

    // Width mismatches are rejected up front, like lookup().
    const Key narrow = {0, 1};
    double value = 0.0;
    bool ok = false;
    EXPECT_THROW(cache.lookupBatch(&narrow, 1, &value, &ok),
                 std::invalid_argument);
}

TEST(ResultCacheTest, GetOrComputeComputesExactlyOnce)
{
    ResultCache cache(oneGroupConfig());
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return 2.5;
    };
    const auto first = cache.getOrCompute({1, 2}, compute, false);
    EXPECT_EQ(first.outcome, Outcome::Computed);
    EXPECT_EQ(first.value, 2.5);
    const auto second = cache.getOrCompute({1, 2}, compute, false);
    EXPECT_EQ(second.outcome, Outcome::Hit);
    EXPECT_EQ(second.value, 2.5);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, GetOrComputeReleasesClaimOnThrow)
{
    ResultCache cache(oneGroupConfig());
    EXPECT_THROW(cache.getOrCompute(
                     {4, 4},
                     []() -> double {
                         throw std::runtime_error("sim failed");
                     },
                     false),
                 std::runtime_error);
    // The failed claim is released: a retry computes fresh.
    const auto retry =
        cache.getOrCompute({4, 4}, [] { return 1.25; }, false);
    EXPECT_EQ(retry.outcome, Outcome::Computed);
    EXPECT_EQ(retry.value, 1.25);
}

TEST(ResultCacheTest, SecondChanceEvictsUnreferencedFirst)
{
    ResultCache cache(oneGroupConfig());
    ASSERT_EQ(cache.capacitySlots(), 24u);
    const auto keyOf = [](std::int64_t i) { return Key{9, i}; };

    for (std::int64_t i = 0; i < 24; ++i)
        ASSERT_TRUE(cache.insert(keyOf(i), i * 1.5, false));
    EXPECT_EQ(cache.liveEntries(), 24u);

    // 25th entry: every slot starts referenced (fresh inserts), so
    // the clock sweep spends all reference bits and takes the first
    // slot — key 0.
    ASSERT_TRUE(cache.insert({10, 100}, -1.0, false));
    double value = 0.0;
    EXPECT_FALSE(cache.lookup(keyOf(0), &value));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.liveEntries(), 24u);

    // Touch keys 1..11: their reference bits shield them, so the next
    // eviction must take key 12 — the first unreferenced slot in
    // probe order.
    for (std::int64_t i = 1; i <= 11; ++i)
        ASSERT_TRUE(cache.lookup(keyOf(i), &value));
    ASSERT_TRUE(cache.insert({10, 101}, -2.0, false));
    EXPECT_FALSE(cache.lookup(keyOf(12), &value));
    for (std::int64_t i = 1; i <= 11; ++i)
        EXPECT_TRUE(cache.lookup(keyOf(i), &value)) << "key " << i;
    ASSERT_TRUE(cache.lookup({10, 100}, &value));
    EXPECT_EQ(value, -1.0);
}

TEST(ResultCacheTest, BudgetCapsFootprintAndOccupancy)
{
    CacheConfig config;
    config.key_words = 4;
    config.budget_bytes = 64 * 1024;
    config.shards = 2;
    ResultCache cache(config);
    EXPECT_LE(cache.footprintBytes(), config.budget_bytes);
    EXPECT_EQ(cache.shardCount(), 2u);
    ASSERT_GT(cache.capacitySlots(), 0u);

    // Insert 4x the capacity; occupancy must never pass capacity.
    const std::int64_t n =
        static_cast<std::int64_t>(cache.capacitySlots()) * 4;
    for (std::int64_t i = 0; i < n; ++i)
        cache.insert({i, i * 3, i ^ 0x55, 7}, i * 0.5, false);
    EXPECT_LE(cache.liveEntries(), cache.capacitySlots());
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ResultCacheTest, DirtyEvictionSpillsThroughStore)
{
    ResultCache cache(oneGroupConfig());
    auto store = std::make_shared<RecordingStore>();
    cache.registerSpillStore(7, store);

    for (std::int64_t i = 0; i < 24; ++i)
        ASSERT_TRUE(cache.insert({7, i}, i * 2.0, /*dirty=*/true));
    ASSERT_TRUE(cache.insert({7, 100}, -1.0, /*dirty=*/true));

    // The evicted dirty entry (key 0, per the clock sweep) landed in
    // the store with its context word stripped.
    const auto records = store->records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].first, Key{0});
    EXPECT_EQ(records[0].second, 0.0);
    EXPECT_EQ(cache.stats().spills, 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, CleanEvictionDoesNotSpill)
{
    ResultCache cache(oneGroupConfig());
    auto store = std::make_shared<RecordingStore>();
    cache.registerSpillStore(7, store);
    for (std::int64_t i = 0; i < 25; ++i)
        cache.insert({7, i}, i * 2.0, /*dirty=*/false);
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.stats().spills, 0u);
    EXPECT_TRUE(store->records().empty());
}

TEST(ResultCacheTest, UnroutableDirtyEvictionIsDropped)
{
    ResultCache cache(oneGroupConfig());
    // No store registered: dirty evictions drop without blocking.
    for (std::int64_t i = 0; i < 30; ++i)
        cache.insert({3, i}, i * 1.0, /*dirty=*/true);
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.stats().spills, 0u);
}

TEST(ResultCacheTest, FlushDirtyPersistsOnceAndMarksClean)
{
    ResultCache cache(oneGroupConfig());
    auto store = std::make_shared<RecordingStore>();
    cache.registerSpillStore(7, store);

    for (std::int64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(cache.insert({7, i}, i + 0.5, /*dirty=*/true));
    EXPECT_EQ(cache.flushDirty(), 5u);
    EXPECT_EQ(store->records().size(), 5u);
    // Everything is clean now: a second flush finds nothing.
    EXPECT_EQ(cache.flushDirty(), 0u);
    EXPECT_EQ(store->records().size(), 5u);
    // The entries themselves are still cached.
    double value = 0.0;
    ASSERT_TRUE(cache.lookup({7, 2}, &value));
    EXPECT_EQ(value, 2.5);
}

TEST(ResultCacheTest, CleanInsertOverDirtyClearsDirtyBit)
{
    ResultCache cache(oneGroupConfig());
    auto store = std::make_shared<RecordingStore>();
    cache.registerSpillStore(7, store);
    ASSERT_TRUE(cache.insert({7, 1}, 3.5, /*dirty=*/true));
    // The caller vouches the same value is now durable.
    EXPECT_FALSE(cache.insert({7, 1}, 3.5, /*dirty=*/false));
    EXPECT_EQ(cache.flushDirty(), 0u);
    EXPECT_TRUE(store->records().empty());
}

TEST(ResultCacheTest, PendingSentinelValueIsCanonicalised)
{
    ResultCache cache(oneGroupConfig());
    const double sentinel =
        std::bit_cast<double>(cache::kPendingBits);
    ASSERT_TRUE(std::isnan(sentinel));
    ASSERT_TRUE(cache.insert({1, 1}, sentinel, false));
    double value = 0.0;
    ASSERT_TRUE(cache.lookup({1, 1}, &value));
    EXPECT_TRUE(std::isnan(value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(value), cache::kNanBits);

    const auto got = cache.getOrCompute(
        {1, 2}, [&] { return sentinel; }, false);
    EXPECT_EQ(got.outcome, Outcome::Computed);
    EXPECT_TRUE(std::isnan(got.value));
    ASSERT_TRUE(cache.lookup({1, 2}, &value));
    EXPECT_TRUE(std::isnan(value));
}

TEST(ResultCacheTest, NegativeZeroAndNanValuesRoundTrip)
{
    ResultCache cache(oneGroupConfig());
    ASSERT_TRUE(cache.insert({1, 1}, -0.0, false));
    ASSERT_TRUE(cache.insert({1, 2}, std::nan(""), false));
    double value = 1.0;
    ASSERT_TRUE(cache.lookup({1, 1}, &value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(value),
              std::bit_cast<std::uint64_t>(-0.0));
    ASSERT_TRUE(cache.lookup({1, 2}, &value));
    EXPECT_TRUE(std::isnan(value));
}

TEST(ResultCacheTest, KeyWidthIsEnforced)
{
    ResultCache cache(oneGroupConfig(3));
    double value = 0.0;
    EXPECT_THROW(cache.lookup({1, 2}, &value), std::invalid_argument);
    EXPECT_THROW(cache.insert({1, 2, 3, 4}, 1.0, false),
                 std::invalid_argument);
    EXPECT_THROW(
        cache.getOrCompute({1}, [] { return 0.0; }, false),
        std::invalid_argument);
    EXPECT_THROW(ResultCache(CacheConfig{}), std::invalid_argument);
}

TEST(ResultCacheTest, ShardCountAdaptsToTinyBudgets)
{
    CacheConfig config;
    config.key_words = 2;
    config.budget_bytes = 1; // one group total
    config.shards = 8;       // more shards than groups
    ResultCache cache(config);
    EXPECT_EQ(cache.shardCount(), 1u);
    EXPECT_EQ(cache.capacitySlots(), 24u);
}

TEST(ResultCacheTest, EnvKnobsParseAndFallBack)
{
    ::setenv("PPM_CACHE_MB", "3", 1);
    EXPECT_EQ(cache::budgetBytesFromEnv(16), 3u << 20);
    ::setenv("PPM_CACHE_MB", "junk", 1);
    EXPECT_EQ(cache::budgetBytesFromEnv(16), 16u << 20);
    ::unsetenv("PPM_CACHE_MB");
    EXPECT_EQ(cache::budgetBytesFromEnv(16), 16u << 20);

    ::setenv("PPM_CACHE_SHARDS", "4", 1);
    EXPECT_EQ(cache::shardsFromEnv(), 4u);
    ::setenv("PPM_CACHE_SHARDS", "-2", 1);
    EXPECT_EQ(cache::shardsFromEnv(), 0u);
    ::unsetenv("PPM_CACHE_SHARDS");
    EXPECT_EQ(cache::shardsFromEnv(), 0u);
}

} // namespace
