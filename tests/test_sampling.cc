/**
 * @file
 * Unit tests for latin hypercube sampling and the sample generators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dspace/paper_space.hh"
#include "sampling/discrepancy.hh"
#include "sampling/latin_hypercube.hh"
#include "sampling/sample_gen.hh"

namespace {

using namespace ppm;
using namespace ppm::sampling;

dspace::DesignSpace
continuousSpace(std::size_t dims)
{
    dspace::DesignSpace s;
    for (std::size_t i = 0; i < dims; ++i)
        s.add(dspace::Parameter("p" + std::to_string(i), 0, 1,
                                dspace::kSampleSizeLevels,
                                dspace::Transform::Linear, false));
    return s;
}

TEST(LatinHypercube, ProducesRequestedSize)
{
    auto space = continuousSpace(3);
    math::Rng rng(1);
    auto sample = latinHypercubeSample(space, 20, rng);
    EXPECT_EQ(sample.size(), 20u);
    for (const auto &p : sample)
        EXPECT_TRUE(space.contains(p));
}

TEST(LatinHypercube, StratificationOneValuePerStratum)
{
    // Without snapping, each dimension must have exactly one point in
    // each of the p strata — the defining LHS property.
    auto space = continuousSpace(4);
    math::Rng rng(2);
    LhsOptions opts;
    opts.snap_to_levels = false;
    const int p = 16;
    auto sample = latinHypercubeSample(space, p, rng, opts);
    for (std::size_t k = 0; k < space.size(); ++k) {
        std::set<int> strata;
        for (const auto &pt : sample)
            strata.insert(static_cast<int>(pt[k] * p));
        EXPECT_EQ(strata.size(), static_cast<std::size_t>(p))
            << "dimension " << k;
    }
}

TEST(LatinHypercube, CenteredStrataHitStratumMidpoints)
{
    auto space = continuousSpace(2);
    math::Rng rng(3);
    LhsOptions opts;
    opts.center_strata = true;
    opts.snap_to_levels = false;
    const int p = 8;
    auto sample = latinHypercubeSample(space, p, rng, opts);
    for (const auto &pt : sample)
        for (double v : pt) {
            const double scaled = v * p - 0.5;
            EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
        }
}

TEST(LatinHypercube, SnapsToDiscreteLevels)
{
    dspace::DesignSpace space;
    space.add(dspace::Parameter("lat", 1, 4, 4,
                                dspace::Transform::Linear, true));
    math::Rng rng(4);
    auto sample = latinHypercubeSample(space, 40, rng);
    std::set<double> values;
    for (const auto &pt : sample)
        values.insert(pt[0]);
    // Only the 4 levels appear, and all of them appear.
    EXPECT_EQ(values.size(), 4u);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        EXPECT_TRUE(values.count(v));
}

TEST(LatinHypercube, CoversAllLevelsRoughlyEqually)
{
    // The paper's variant: a sample has points for all settings of
    // each parameter. With 40 points and 4 levels, each level should
    // be used about 10 times.
    dspace::DesignSpace space;
    space.add(dspace::Parameter("lat", 1, 4, 4,
                                dspace::Transform::Linear, true));
    math::Rng rng(5);
    auto sample = latinHypercubeSample(space, 40, rng);
    int counts[4] = {0, 0, 0, 0};
    for (const auto &pt : sample)
        ++counts[static_cast<int>(pt[0]) - 1];
    for (int c : counts) {
        EXPECT_GE(c, 6);
        EXPECT_LE(c, 14);
    }
}

TEST(LatinHypercube, PaperSpaceSampleIsValid)
{
    auto space = dspace::paperTrainSpace();
    math::Rng rng(6);
    auto sample = latinHypercubeSample(space, 50, rng);
    EXPECT_EQ(sample.size(), 50u);
    for (const auto &pt : sample) {
        EXPECT_TRUE(space.contains(pt)) << space.describe(pt);
        // Integer parameters must be integral.
        EXPECT_DOUBLE_EQ(pt[dspace::kPipeDepth],
                         std::round(pt[dspace::kPipeDepth]));
        EXPECT_DOUBLE_EQ(pt[dspace::kRobSize],
                         std::round(pt[dspace::kRobSize]));
    }
}

TEST(LatinHypercube, ToUnitSampleMatchesSpace)
{
    auto space = continuousSpace(2);
    math::Rng rng(7);
    auto sample = latinHypercubeSample(space, 10, rng);
    auto unit = toUnitSample(space, sample);
    ASSERT_EQ(unit.size(), sample.size());
    for (std::size_t i = 0; i < unit.size(); ++i)
        for (std::size_t k = 0; k < 2; ++k)
            EXPECT_NEAR(unit[i][k], sample[i][k], 1e-12);
}

TEST(BestLatinHypercube, PicksLowestDiscrepancyCandidate)
{
    auto space = continuousSpace(3);
    math::Rng rng_a(8), rng_b(8);
    // best-of-1 vs best-of-20 from the same stream start: the
    // optimized sample can only be better or equal.
    auto one = bestLatinHypercube(space, 30, 1, rng_a);
    auto many = bestLatinHypercube(space, 30, 20, rng_b);
    EXPECT_LE(many.discrepancy, one.discrepancy);
    EXPECT_EQ(many.candidates_evaluated, 20);
    EXPECT_EQ(many.points.size(), 30u);
}

TEST(BestLatinHypercube, DiscrepancyMatchesRecomputation)
{
    auto space = continuousSpace(2);
    math::Rng rng(9);
    auto best = bestLatinHypercube(space, 25, 5, rng);
    const double recomputed =
        centeredL2Discrepancy(toUnitSample(space, best.points));
    EXPECT_NEAR(best.discrepancy, recomputed, 1e-12);
}

TEST(RandomSample, SizesAndContainment)
{
    auto space = dspace::paperTrainSpace();
    math::Rng rng(10);
    auto sample = randomSample(space, 25, rng);
    EXPECT_EQ(sample.size(), 25u);
    for (const auto &pt : sample)
        EXPECT_TRUE(space.contains(pt));
}

TEST(RandomTestSet, DrawsFromRestrictedSpace)
{
    auto test_space = dspace::paperTestSpace();
    math::Rng rng(11);
    auto pts = randomTestSet(test_space, 50, rng);
    EXPECT_EQ(pts.size(), 50u);
    for (const auto &pt : pts) {
        EXPECT_TRUE(test_space.contains(pt));
        EXPECT_GE(pt[dspace::kPipeDepth], 9);
        EXPECT_LE(pt[dspace::kPipeDepth], 22);
    }
}

TEST(RandomTestSet, IndependentOfTrainingStream)
{
    // Different seeds give different test sets.
    auto space = dspace::paperTestSpace();
    math::Rng a(1), b(2);
    auto pa = randomTestSet(space, 10, a);
    auto pb = randomTestSet(space, 10, b);
    EXPECT_NE(pa, pb);
}

} // namespace
