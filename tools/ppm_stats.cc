/**
 * @file
 * ppm_stats: poll running ppm_serve processes for their metric
 * registries (the v2 Stats frame) and print the merged view.
 *
 *   ppm_stats [--socket PATH[,PATH...]] [--json] [--no-local]
 *             [--timeout MS]
 *
 * Sockets default to $PPM_SERVE_SOCKET (comma-separated). Every
 * reachable server contributes one snapshot; snapshots are merged by
 * metric name (counters and histogram buckets sum, gauges sum) along
 * with this process's own registry, and the result prints as an
 * aligned table (default) or a single JSON object (--json).
 *
 * Exit status: 0 when every requested socket answered, 1 when at
 * least one was unreachable (the merged view of the rest still
 * prints), 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "serve/remote_oracle.hh"
#include "serve/socket_io.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket PATH[,PATH...]] [--json] [--no-local]"
        " [--timeout MS]\n"
        "  --socket PATHS   comma-separated server sockets to poll\n"
        "                   (default: $PPM_SERVE_SOCKET)\n"
        "  --json           print one JSON object instead of a table\n"
        "  --no-local       skip this process's own registry\n"
        "  --timeout MS     per-socket connect/IO timeout (default"
        " 2000)\n",
        argv0);
}

std::vector<std::string>
splitSockets(const std::string &value)
{
    std::vector<std::string> sockets;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            sockets.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return sockets;
}

/** Fetch one server's snapshot; throws IoError/ProtocolError. */
ppm::obs::Snapshot
pollSocket(const std::string &socket, int timeout_ms)
{
    using namespace ppm::serve;
    FdGuard fd = connectUnix(socket, timeout_ms);
    writeFrame(fd.get(), encodeStatsRequest(1), timeout_ms);
    const Frame reply = readFrame(fd.get(), timeout_ms);
    if (reply.type == MsgType::Error)
        throw ProtocolError("server error: " +
                            parseError(reply.payload).message);
    if (reply.type != MsgType::StatsResponse)
        throw ProtocolError("unexpected reply type");
    return parseStatsResponse(reply.payload);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> sockets = ppm::serve::socketsFromEnv();
    bool json = false;
    bool include_local = true;
    int timeout_ms = 2000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            sockets = splitSockets(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--no-local") {
            include_local = false;
        } else if (arg == "--timeout" && has_value) {
            timeout_ms = std::atoi(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    ppm::obs::Snapshot merged;
    if (include_local)
        merged = ppm::obs::Registry::instance().snapshot();

    int unreachable = 0;
    for (const std::string &socket : sockets) {
        try {
            ppm::obs::merge(merged, pollSocket(socket, timeout_ms));
        } catch (const std::exception &e) {
            ++unreachable;
            std::fprintf(stderr, "ppm_stats: %s: %s\n",
                         socket.c_str(), e.what());
        }
    }

    if (json)
        std::printf("%s\n", ppm::obs::toJson(merged).c_str());
    else
        std::fputs(ppm::obs::toTable(merged).c_str(), stdout);
    return unreachable == 0 ? 0 : 1;
}
