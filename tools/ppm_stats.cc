/**
 * @file
 * ppm_stats: poll running ppm_serve processes for their metric
 * registries (the v2 Stats frame) and print the merged view.
 *
 *   ppm_stats [--socket ENDPOINT[,ENDPOINT...]] [--json] [--no-local]
 *             [--timeout MS] [--watch SECONDS]
 *
 * Endpoints default to $PPM_SERVE_SOCKET (comma-separated; Unix
 * socket paths and TCP host:port specs mix freely). Every reachable
 * server contributes one snapshot; snapshots are merged by metric
 * name (counters and histogram buckets sum, gauges sum) along with
 * this process's own registry, and the result prints as an aligned
 * table (default) or a single JSON object (--json).
 *
 * --watch SECONDS polls twice, SECONDS apart, and prints per-second
 * rates over the interval instead of absolute totals: counter and
 * histogram deltas divided by the interval (clamped at zero across
 * server restarts), gauges as their current level. Histogram rows
 * carry interval p50/p95/p99 latency, and a per-endpoint SLO table
 * follows: request rate, latency quantiles over the slo.* request
 * histograms, error-budget burn (slo.errors.*) and live queue depth
 * for every polled server.
 *
 * Exit status: 0 when every requested endpoint answered (on every
 * poll), 1 when at least one was unreachable (the merged view of the
 * rest still prints), 2 on usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "serve/remote_oracle.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket ENDPOINT[,ENDPOINT...]] [--json]"
        " [--no-local] [--timeout MS] [--watch SECONDS]\n"
        "  --socket ENDPOINTS  comma-separated server endpoints to\n"
        "                      poll: Unix paths and/or host:port\n"
        "                      (default: $PPM_SERVE_SOCKET)\n"
        "  --json              print one JSON object instead of a"
        " table\n"
        "  --no-local          skip this process's own registry\n"
        "  --timeout MS        per-endpoint connect/IO timeout"
        " (default 2000)\n"
        "  --watch SECONDS     poll twice, SECONDS apart, and print\n"
        "                      per-second rates over the interval\n",
        argv0);
}

std::vector<std::string>
splitSockets(const std::string &value)
{
    std::vector<std::string> sockets;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            sockets.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return sockets;
}

/** Fetch one server's snapshot; throws IoError/ProtocolError. */
ppm::obs::Snapshot
pollSocket(const std::string &socket, int timeout_ms)
{
    using namespace ppm::serve;
    FdGuard fd = connectEndpoint(parseEndpoint(socket), timeout_ms);
    writeFrame(fd.get(), encodeStatsRequest(1), timeout_ms);
    const Frame reply = readFrame(fd.get(), timeout_ms);
    if (reply.type == MsgType::Error)
        throw ProtocolError("server error: " +
                            parseError(reply.payload).message);
    if (reply.type != MsgType::StatsResponse)
        throw ProtocolError("unexpected reply type");
    return parseStatsResponse(reply.payload);
}

/** One poll: the merged view plus each endpoint's own snapshot
 * (nullopt = unreachable), from a single connection per endpoint. */
struct PollResult
{
    ppm::obs::Snapshot merged;
    std::vector<std::optional<ppm::obs::Snapshot>> per_endpoint;
};

PollResult
pollAll(const std::vector<std::string> &sockets, bool include_local,
        int timeout_ms, int &unreachable)
{
    PollResult result;
    if (include_local)
        result.merged = ppm::obs::Registry::instance().snapshot();
    result.per_endpoint.reserve(sockets.size());
    for (const std::string &socket : sockets) {
        try {
            ppm::obs::Snapshot snap = pollSocket(socket, timeout_ms);
            ppm::obs::merge(result.merged, snap);
            result.per_endpoint.push_back(std::move(snap));
        } catch (const std::exception &e) {
            ++unreachable;
            result.per_endpoint.push_back(std::nullopt);
            std::fprintf(stderr, "ppm_stats: %s: %s\n",
                         socket.c_str(), e.what());
        }
    }
    return result;
}

/** The --watch rate view: per-second rates of a poll-to-poll delta,
 * with interval latency quantiles per histogram. */
std::string
rateTable(const ppm::obs::Snapshot &d, double seconds)
{
    std::string out;
    char line[256];
    if (!d.counters.empty()) {
        out += "counters (per second):\n";
        for (const auto &c : d.counters) {
            std::snprintf(line, sizeof(line), "  %-36s %14.2f\n",
                          c.name.c_str(),
                          static_cast<double>(c.value) / seconds);
            out += line;
        }
    }
    if (!d.gauges.empty()) {
        out += "gauges (level):\n";
        for (const auto &g : d.gauges) {
            std::snprintf(line, sizeof(line), "  %-36s %14lld\n",
                          g.name.c_str(),
                          static_cast<long long>(g.value));
            out += line;
        }
    }
    if (!d.histograms.empty()) {
        out += "histograms:                             "
               "    per_s   mean_us    p50_us    p95_us    p99_us\n";
        for (const auto &h : d.histograms) {
            const double mean_us =
                h.count == 0 ? 0.0
                             : static_cast<double>(h.total_ns) /
                                   static_cast<double>(h.count) / 1e3;
            std::snprintf(
                line, sizeof(line),
                "  %-36s %9.2f %9.1f %9.1f %9.1f %9.1f\n",
                h.name.c_str(),
                static_cast<double>(h.count) / seconds, mean_us,
                static_cast<double>(ppm::obs::quantileNs(h, 0.50)) /
                    1e3,
                static_cast<double>(ppm::obs::quantileNs(h, 0.95)) /
                    1e3,
                static_cast<double>(ppm::obs::quantileNs(h, 0.99)) /
                    1e3);
            out += line;
        }
    }
    if (out.empty())
        out = "(no metrics)\n";
    return out;
}

/**
 * The --watch SLO view: one row per endpoint, built from that
 * endpoint's own poll-to-poll delta — served request rate and
 * interval latency quantiles over the per-family slo.* histograms,
 * error-budget burn from the slo.errors.* counters, and the live
 * connection queue depth.
 */
std::string
sloTable(const std::vector<std::string> &sockets, const PollResult &a,
         const PollResult &b, double seconds)
{
    if (sockets.empty())
        return "";
    std::string out =
        "slo (per endpoint):                     "
        "    req_s    p50_us    p95_us    p99_us     err_s  queue\n";
    char line[256];
    for (std::size_t i = 0; i < sockets.size(); ++i) {
        if (i >= b.per_endpoint.size() || !b.per_endpoint[i]) {
            std::snprintf(line, sizeof(line), "  %-36s %s\n",
                          sockets[i].c_str(), "unreachable");
            out += line;
            continue;
        }
        const ppm::obs::Snapshot empty;
        const ppm::obs::Snapshot d = ppm::obs::delta(
            *b.per_endpoint[i],
            i < a.per_endpoint.size() && a.per_endpoint[i]
                ? *a.per_endpoint[i]
                : empty);
        // All request families land in slo.* histograms; merge their
        // interval buckets for one endpoint-level latency profile.
        ppm::obs::HistogramValue slo;
        slo.buckets.assign(ppm::obs::Histogram::kBuckets, 0);
        for (const auto &h : d.histograms) {
            if (h.name.rfind("slo.", 0) != 0)
                continue;
            slo.count += h.count;
            slo.total_ns += h.total_ns;
            for (std::size_t bkt = 0;
                 bkt < h.buckets.size() && bkt < slo.buckets.size();
                 ++bkt)
                slo.buckets[bkt] += h.buckets[bkt];
        }
        std::uint64_t errors = 0;
        for (const auto &c : d.counters)
            if (c.name.rfind("slo.errors.", 0) == 0)
                errors += c.value;
        long long queue = 0;
        for (const auto &g : b.per_endpoint[i]->gauges)
            if (g.name == "serve.active_connections")
                queue = g.value;
        std::snprintf(
            line, sizeof(line),
            "  %-36s %9.2f %9.1f %9.1f %9.1f %9.2f %6lld\n",
            sockets[i].c_str(),
            static_cast<double>(slo.count) / seconds,
            static_cast<double>(ppm::obs::quantileNs(slo, 0.50)) / 1e3,
            static_cast<double>(ppm::obs::quantileNs(slo, 0.95)) / 1e3,
            static_cast<double>(ppm::obs::quantileNs(slo, 0.99)) / 1e3,
            static_cast<double>(errors) / seconds, queue);
        out += line;
    }
    return out;
}

std::string
rateJson(const ppm::obs::Snapshot &d, double seconds)
{
    // Rates as doubles keyed like toJson; gauges stay integer levels.
    std::string out = "{\"interval_s\":" + std::to_string(seconds) +
                      ",\"counter_rates\":{";
    char num[64];
    bool first = true;
    for (const auto &c : d.counters) {
        if (!first)
            out.push_back(',');
        first = false;
        out += "\"" + c.name + "\":";
        std::snprintf(num, sizeof(num), "%.6f",
                      static_cast<double>(c.value) / seconds);
        out += num;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &g : d.gauges) {
        if (!first)
            out.push_back(',');
        first = false;
        out += "\"" + g.name + "\":" + std::to_string(g.value);
    }
    out += "},\"histogram_rates\":{";
    first = true;
    for (const auto &h : d.histograms) {
        if (!first)
            out.push_back(',');
        first = false;
        out += "\"" + h.name + "\":";
        std::snprintf(num, sizeof(num), "%.6f",
                      static_cast<double>(h.count) / seconds);
        out += num;
    }
    out += "}}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> sockets = ppm::serve::socketsFromEnv();
    bool json = false;
    bool include_local = true;
    int timeout_ms = 2000;
    double watch_s = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            sockets = splitSockets(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--no-local") {
            include_local = false;
        } else if (arg == "--timeout" && has_value) {
            timeout_ms = std::atoi(argv[++i]);
        } else if (arg == "--watch" && has_value) {
            watch_s = std::atof(argv[++i]);
            if (watch_s <= 0.0) {
                std::fprintf(stderr,
                             "--watch needs a positive interval\n");
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    int unreachable = 0;
    const PollResult first =
        pollAll(sockets, include_local, timeout_ms, unreachable);

    if (watch_s > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(watch_s));
        const PollResult second =
            pollAll(sockets, include_local, timeout_ms, unreachable);
        const ppm::obs::Snapshot d =
            ppm::obs::delta(second.merged, first.merged);
        if (json) {
            std::printf("%s\n", rateJson(d, watch_s).c_str());
        } else {
            std::fputs(rateTable(d, watch_s).c_str(), stdout);
            std::fputs(sloTable(sockets, first, second, watch_s)
                           .c_str(),
                       stdout);
        }
        return unreachable == 0 ? 0 : 1;
    }

    if (json)
        std::printf("%s\n", ppm::obs::toJson(first.merged).c_str());
    else
        std::fputs(ppm::obs::toTable(first.merged).c_str(), stdout);
    return unreachable == 0 ? 0 : 1;
}
