/**
 * @file
 * ppm_stats: poll running ppm_serve processes for their metric
 * registries (the v2 Stats frame) and print the merged view.
 *
 *   ppm_stats [--socket ENDPOINT[,ENDPOINT...]] [--json] [--no-local]
 *             [--timeout MS] [--watch SECONDS]
 *
 * Endpoints default to $PPM_SERVE_SOCKET (comma-separated; Unix
 * socket paths and TCP host:port specs mix freely). Every reachable
 * server contributes one snapshot; snapshots are merged by metric
 * name (counters and histogram buckets sum, gauges sum) along with
 * this process's own registry, and the result prints as an aligned
 * table (default) or a single JSON object (--json).
 *
 * --watch SECONDS polls twice, SECONDS apart, and prints per-second
 * rates over the interval instead of absolute totals: counter and
 * histogram deltas divided by the interval (clamped at zero across
 * server restarts), gauges as their current level.
 *
 * Exit status: 0 when every requested endpoint answered (on every
 * poll), 1 when at least one was unreachable (the merged view of the
 * rest still prints), 2 on usage errors.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "serve/remote_oracle.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket ENDPOINT[,ENDPOINT...]] [--json]"
        " [--no-local] [--timeout MS] [--watch SECONDS]\n"
        "  --socket ENDPOINTS  comma-separated server endpoints to\n"
        "                      poll: Unix paths and/or host:port\n"
        "                      (default: $PPM_SERVE_SOCKET)\n"
        "  --json              print one JSON object instead of a"
        " table\n"
        "  --no-local          skip this process's own registry\n"
        "  --timeout MS        per-endpoint connect/IO timeout"
        " (default 2000)\n"
        "  --watch SECONDS     poll twice, SECONDS apart, and print\n"
        "                      per-second rates over the interval\n",
        argv0);
}

std::vector<std::string>
splitSockets(const std::string &value)
{
    std::vector<std::string> sockets;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            sockets.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return sockets;
}

/** Fetch one server's snapshot; throws IoError/ProtocolError. */
ppm::obs::Snapshot
pollSocket(const std::string &socket, int timeout_ms)
{
    using namespace ppm::serve;
    FdGuard fd = connectEndpoint(parseEndpoint(socket), timeout_ms);
    writeFrame(fd.get(), encodeStatsRequest(1), timeout_ms);
    const Frame reply = readFrame(fd.get(), timeout_ms);
    if (reply.type == MsgType::Error)
        throw ProtocolError("server error: " +
                            parseError(reply.payload).message);
    if (reply.type != MsgType::StatsResponse)
        throw ProtocolError("unexpected reply type");
    return parseStatsResponse(reply.payload);
}

/** Merged view across the local registry and every endpoint. */
ppm::obs::Snapshot
pollAll(const std::vector<std::string> &sockets, bool include_local,
        int timeout_ms, int &unreachable)
{
    ppm::obs::Snapshot merged;
    if (include_local)
        merged = ppm::obs::Registry::instance().snapshot();
    for (const std::string &socket : sockets) {
        try {
            ppm::obs::merge(merged, pollSocket(socket, timeout_ms));
        } catch (const std::exception &e) {
            ++unreachable;
            std::fprintf(stderr, "ppm_stats: %s: %s\n",
                         socket.c_str(), e.what());
        }
    }
    return merged;
}

/** The --watch rate view: per-second rates of a poll-to-poll delta. */
std::string
rateTable(const ppm::obs::Snapshot &d, double seconds)
{
    std::string out;
    char line[256];
    if (!d.counters.empty()) {
        out += "counters (per second):\n";
        for (const auto &c : d.counters) {
            std::snprintf(line, sizeof(line), "  %-36s %14.2f\n",
                          c.name.c_str(),
                          static_cast<double>(c.value) / seconds);
            out += line;
        }
    }
    if (!d.gauges.empty()) {
        out += "gauges (level):\n";
        for (const auto &g : d.gauges) {
            std::snprintf(line, sizeof(line), "  %-36s %14lld\n",
                          g.name.c_str(),
                          static_cast<long long>(g.value));
            out += line;
        }
    }
    if (!d.histograms.empty()) {
        out += "histograms:                             "
               "    per_s   mean_us\n";
        for (const auto &h : d.histograms) {
            const double mean_us =
                h.count == 0 ? 0.0
                             : static_cast<double>(h.total_ns) /
                                   static_cast<double>(h.count) / 1e3;
            std::snprintf(line, sizeof(line),
                          "  %-36s %9.2f %9.1f\n", h.name.c_str(),
                          static_cast<double>(h.count) / seconds,
                          mean_us);
            out += line;
        }
    }
    if (out.empty())
        out = "(no metrics)\n";
    return out;
}

std::string
rateJson(const ppm::obs::Snapshot &d, double seconds)
{
    // Rates as doubles keyed like toJson; gauges stay integer levels.
    std::string out = "{\"interval_s\":" + std::to_string(seconds) +
                      ",\"counter_rates\":{";
    char num[64];
    bool first = true;
    for (const auto &c : d.counters) {
        if (!first)
            out.push_back(',');
        first = false;
        out += "\"" + c.name + "\":";
        std::snprintf(num, sizeof(num), "%.6f",
                      static_cast<double>(c.value) / seconds);
        out += num;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &g : d.gauges) {
        if (!first)
            out.push_back(',');
        first = false;
        out += "\"" + g.name + "\":" + std::to_string(g.value);
    }
    out += "},\"histogram_rates\":{";
    first = true;
    for (const auto &h : d.histograms) {
        if (!first)
            out.push_back(',');
        first = false;
        out += "\"" + h.name + "\":";
        std::snprintf(num, sizeof(num), "%.6f",
                      static_cast<double>(h.count) / seconds);
        out += num;
    }
    out += "}}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> sockets = ppm::serve::socketsFromEnv();
    bool json = false;
    bool include_local = true;
    int timeout_ms = 2000;
    double watch_s = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            sockets = splitSockets(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--no-local") {
            include_local = false;
        } else if (arg == "--timeout" && has_value) {
            timeout_ms = std::atoi(argv[++i]);
        } else if (arg == "--watch" && has_value) {
            watch_s = std::atof(argv[++i]);
            if (watch_s <= 0.0) {
                std::fprintf(stderr,
                             "--watch needs a positive interval\n");
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    int unreachable = 0;
    const ppm::obs::Snapshot first =
        pollAll(sockets, include_local, timeout_ms, unreachable);

    if (watch_s > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(watch_s));
        const ppm::obs::Snapshot second =
            pollAll(sockets, include_local, timeout_ms, unreachable);
        const ppm::obs::Snapshot d = ppm::obs::delta(second, first);
        if (json)
            std::printf("%s\n", rateJson(d, watch_s).c_str());
        else
            std::fputs(rateTable(d, watch_s).c_str(), stdout);
        return unreachable == 0 ? 0 : 1;
    }

    if (json)
        std::printf("%s\n", ppm::obs::toJson(first).c_str());
    else
        std::fputs(ppm::obs::toTable(first).c_str(), stdout);
    return unreachable == 0 ? 0 : 1;
}
