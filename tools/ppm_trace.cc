/**
 * @file
 * ppm_trace: pull per-process span buffers from running ppm_serve
 * processes (the v4 TraceRequest frame) and/or read client-side
 * PPM_SPANS_OUT JSONL dumps, merge them, and emit one Chrome trace
 * (chrome://tracing / Perfetto "Trace Event Format") showing the
 * cross-process span tree of every sampled request.
 *
 *   ppm_trace [--socket ENDPOINT[,ENDPOINT...]] [--in FILE]...
 *             [--out FILE] [--trace-id HEX] [--drain] [--timeout MS]
 *
 * Endpoints default to $PPM_SERVE_SOCKET. Each server contributes a
 * TraceDump (pid, endpoint, spans, drop count); each --in FILE
 * contributes one process's JSONL dump (the format SpanBuffer
 * writes). Spans carry wall-clock (epoch) timestamps, so merging is
 * ordering by start time — no clock negotiation. --trace-id keeps
 * only spans of one trace (32 hex digits, or any unique prefix).
 * --drain also clears the server-side buffers so the next pull starts
 * fresh.
 *
 * Output: a JSON object ({"traceEvents": [...]}) with one complete
 * ("ph":"X") event per span, pid/tid preserved, process_name metadata
 * naming each server's endpoint, and the trace id + span/parent ids
 * in args — Perfetto groups one request's spans across every process
 * because they share "ts" ranges and args.trace.
 *
 * Exit status: 0 with every source read, 1 when at least one endpoint
 * or file failed (the merge of the rest still writes), 2 on usage
 * errors.
 */

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace_context.hh"
#include "serve/protocol.hh"
#include "serve/remote_oracle.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"

namespace {

using ppm::serve::TraceDump;
using ppm::serve::TraceSpan;

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket ENDPOINT[,ENDPOINT...]] [--in FILE]...\n"
        "          [--out FILE] [--trace-id HEX] [--drain]"
        " [--timeout MS]\n"
        "  --socket ENDPOINTS  servers to pull span buffers from\n"
        "                      (default: $PPM_SERVE_SOCKET)\n"
        "  --in FILE           merge a PPM_SPANS_OUT JSONL dump\n"
        "  --out FILE          Chrome trace destination"
        " (default: stdout)\n"
        "  --trace-id HEX      keep one trace (hex id or prefix)\n"
        "  --drain             clear server buffers after pulling\n"
        "  --timeout MS        per-endpoint connect/IO timeout"
        " (default 2000)\n",
        argv0);
}

std::vector<std::string>
splitSockets(const std::string &value)
{
    std::vector<std::string> sockets;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            sockets.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return sockets;
}

/** Pull one server's span buffer; throws IoError/ProtocolError. */
TraceDump
pullSocket(const std::string &socket, bool drain, int timeout_ms)
{
    using namespace ppm::serve;
    FdGuard fd = connectEndpoint(parseEndpoint(socket), timeout_ms);
    TraceRequest req;
    req.nonce = 1;
    req.drain = drain;
    writeFrame(fd.get(), encodeTraceRequest(req), timeout_ms);
    const Frame reply = readFrame(fd.get(), timeout_ms);
    if (reply.type == MsgType::Error)
        throw ProtocolError("server error: " +
                            parseError(reply.payload).message);
    if (reply.type != MsgType::TraceResponse)
        throw ProtocolError("unexpected reply type");
    return parseTraceResponse(reply.payload);
}

/** Minimal scanner for the flat JSONL objects SpanBuffer writes. */
bool
jsonField(const std::string &line, const char *key, std::string &out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t pos = at + needle.size();
    if (pos < line.size() && line[pos] == '"') {
        const std::size_t end = line.find('"', pos + 1);
        if (end == std::string::npos)
            return false;
        out = line.substr(pos + 1, end - pos - 1);
        return true;
    }
    std::size_t end = pos;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    out = line.substr(pos, end - pos);
    return true;
}

/** Read one process's JSONL dump into a TraceDump (pid per line). */
std::vector<TraceDump>
readJsonl(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error(path + ": cannot open");
    // One dump per pid seen in the file.
    std::vector<TraceDump> dumps;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string trace, span, parent, name, ts, dur, pid, tid;
        if (!jsonField(line, "trace", trace) ||
            !jsonField(line, "span", span) ||
            !jsonField(line, "name", name) ||
            !jsonField(line, "ts_ns", ts) ||
            !jsonField(line, "dur_ns", dur) ||
            !jsonField(line, "pid", pid))
            continue; // not a span line
        jsonField(line, "parent", parent);
        jsonField(line, "tid", tid);
        if (trace.size() != 32)
            continue;
        TraceSpan s;
        s.trace_hi = std::strtoull(trace.substr(0, 16).c_str(),
                                   nullptr, 16);
        s.trace_lo = std::strtoull(trace.substr(16).c_str(), nullptr,
                                   16);
        s.span_id = std::strtoull(span.c_str(), nullptr, 16);
        s.parent_span_id = std::strtoull(parent.c_str(), nullptr, 16);
        s.name = name;
        s.start_unix_ns = std::strtoull(ts.c_str(), nullptr, 10);
        s.dur_ns = std::strtoull(dur.c_str(), nullptr, 10);
        s.tid = static_cast<std::uint32_t>(
            std::strtoul(tid.c_str(), nullptr, 10));
        const std::uint32_t span_pid = static_cast<std::uint32_t>(
            std::strtoul(pid.c_str(), nullptr, 10));
        TraceDump *dump = nullptr;
        for (TraceDump &d : dumps)
            if (d.pid == span_pid)
                dump = &d;
        if (dump == nullptr) {
            dumps.emplace_back();
            dump = &dumps.back();
            dump->pid = span_pid;
            dump->endpoint = path;
        }
        dump->spans.push_back(std::move(s));
    }
    return dumps;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** One merged Chrome trace over every dump. */
std::string
chromeTrace(const std::vector<TraceDump> &dumps,
            const std::string &trace_filter)
{
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    std::uint64_t dropped = 0;
    std::uint64_t emitted = 0;
    for (const TraceDump &dump : dumps) {
        dropped += dump.dropped;
        if (!dump.endpoint.empty()) {
            if (!first)
                out << ",";
            first = false;
            out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
                << dump.pid << ",\"tid\":0,\"args\":{\"name\":\""
                << jsonEscape(dump.endpoint) << "\"}}";
        }
        for (const TraceSpan &s : dump.spans) {
            const std::string trace_id =
                ppm::obs::traceIdHex(s.trace_hi, s.trace_lo);
            if (!trace_filter.empty() &&
                trace_id.compare(0, trace_filter.size(),
                                 trace_filter) != 0)
                continue;
            ++emitted;
            if (!first)
                out << ",";
            first = false;
            char ids[96];
            std::snprintf(ids, sizeof(ids),
                          "\"span\":\"%016" PRIx64
                          "\",\"parent\":\"%016" PRIx64 "\"",
                          s.span_id, s.parent_span_id);
            // Chrome trace "ts"/"dur" are microseconds (doubles keep
            // sub-us precision).
            out << "{\"name\":\"" << jsonEscape(s.name)
                << "\",\"ph\":\"X\",\"pid\":" << dump.pid
                << ",\"tid\":" << s.tid << ",\"ts\":"
                << static_cast<double>(s.start_unix_ns) / 1e3
                << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1e3
                << ",\"args\":{\"trace\":\"" << trace_id << "\","
                << ids << "}}";
        }
    }
    out << "],\"otherData\":{\"ppm_spans\":\"" << emitted
        << "\",\"ppm_dropped_spans\":\"" << dropped << "\"}}";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> sockets = ppm::serve::socketsFromEnv();
    std::vector<std::string> inputs;
    std::string out_path;
    std::string trace_filter;
    bool drain = false;
    int timeout_ms = 2000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            sockets = splitSockets(argv[++i]);
        } else if (arg == "--in" && has_value) {
            inputs.push_back(argv[++i]);
        } else if (arg == "--out" && has_value) {
            out_path = argv[++i];
        } else if (arg == "--trace-id" && has_value) {
            trace_filter = argv[++i];
            for (char &c : trace_filter)
                c = static_cast<char>(std::tolower(
                    static_cast<unsigned char>(c)));
        } else if (arg == "--drain") {
            drain = true;
        } else if (arg == "--timeout" && has_value) {
            timeout_ms = std::atoi(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    std::vector<TraceDump> dumps;
    int failed = 0;
    for (const std::string &socket : sockets) {
        try {
            dumps.push_back(pullSocket(socket, drain, timeout_ms));
        } catch (const std::exception &e) {
            ++failed;
            std::fprintf(stderr, "ppm_trace: %s: %s\n",
                         socket.c_str(), e.what());
        }
    }
    for (const std::string &path : inputs) {
        try {
            std::vector<TraceDump> file = readJsonl(path);
            for (TraceDump &d : file)
                dumps.push_back(std::move(d));
        } catch (const std::exception &e) {
            ++failed;
            std::fprintf(stderr, "ppm_trace: %s\n", e.what());
        }
    }

    const std::string trace = chromeTrace(dumps, trace_filter);
    if (out_path.empty()) {
        std::fputs(trace.c_str(), stdout);
        std::fputc('\n', stdout);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "ppm_trace: %s: cannot open\n",
                         out_path.c_str());
            return 2;
        }
        out << trace << "\n";
    }
    return failed == 0 ? 0 : 1;
}
