/**
 * @file
 * ppm_serve: run a sharded simulation server on a Unix-domain socket
 * or a TCP endpoint.
 *
 *   ppm_serve [--socket PATH | --listen HOST:PORT] [--workers N]
 *             [--archive-dir DIR] [--predict SNAPSHOT]
 *             [--model-dir DIR] [--model-poll-ms N]
 *             [--fault-spec SPEC] [--verbose]
 *
 * With --predict the server additionally answers PREDICT batches from
 * the given model snapshot (published by ppm_publish); with
 * --model-dir (or PPM_MODEL_DIR) it watches a directory and
 * hot-swaps, with zero downtime, to any snapshot that appears there
 * with a greater model version. Snapshots can also be pushed over the
 * wire (MODEL push frames).
 *
 * Clients reach it by exporting PPM_SERVE_SOCKET=ENDPOINT
 * (comma-separate several endpoints — Unix paths and host:port specs
 * mix freely — to shard across several server processes or hosts) —
 * every bench and example built on serve::makeOracle() then evaluates
 * its batches remotely, with transparent fallback to in-process
 * simulation if the server goes away. With --archive-dir, every
 * simulation result is persisted to a CRC-checked append-only log and
 * replayed for free across restarts.
 *
 * TCP mode is unauthenticated and unencrypted: bind loopback or a
 * trusted network only.
 *
 * --fault-spec (or PPM_FAULT_SPEC) installs the deterministic
 * transport fault injector for chaos rehearsal; see
 * serve/fault_injector.hh for the grammar.
 *
 * --drift-sample N (or PPM_DRIFT_SAMPLE) shadow-checks every Nth
 * served PREDICT point against ground truth already in the result
 * cache and exports model.drift.* metrics; a model whose observed
 * error degrades past --drift-threshold times its training-time CV
 * error fires a one-shot model_drift event (see drift_monitor.hh).
 *
 * Stops cleanly on SIGINT/SIGTERM.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "serve/fault_injector.hh"
#include "serve/remote_oracle.hh"
#include "serve/sim_server.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket PATH | --listen HOST:PORT] [--workers N]"
        " [--archive-dir DIR] [--predict SNAPSHOT] [--model-dir DIR]"
        " [--model-poll-ms N] [--cache-mb N] [--fault-spec SPEC]"
        " [--verbose]\n"
        "  --socket PATH       Unix socket to listen on (default:\n"
        "                      first entry of $PPM_SERVE_SOCKET, else\n"
        "                      /tmp/ppm_serve.sock)\n"
        "  --listen HOST:PORT  TCP endpoint to listen on instead\n"
        "                      (port 0 = kernel-assigned; printed on\n"
        "                      startup). Unauthenticated: bind\n"
        "                      loopback or a trusted network only\n"
        "  --workers N         concurrent request workers (default 1)\n"
        "  --archive-dir DIR   persist results to DIR (CRC-checked\n"
        "                      append-only archive, replayed on reuse)\n"
        "  --predict SNAPSHOT  serve PREDICT queries from this model\n"
        "                      snapshot (see ppm_publish)\n"
        "  --model-dir DIR     watch DIR for *.ppmm snapshots and\n"
        "                      hot-swap to newer model versions\n"
        "                      (default: $PPM_MODEL_DIR when set)\n"
        "  --model-poll-ms N   model directory poll interval\n"
        "                      (default 200)\n"
        "  --cache-mb N        shared result-cache budget in MiB\n"
        "                      (default: $PPM_CACHE_MB, else 16);\n"
        "                      evicted unarchived entries spill to\n"
        "                      the archive\n"
        "  --fault-spec SPEC   install the deterministic transport\n"
        "                      fault injector (chaos rehearsal), e.g.\n"
        "                      seed=1;drop=0.1;delay=0.1;delay_ms=5\n"
        "  --drift-sample N    shadow-check every Nth served PREDICT\n"
        "                      point against cached ground truth\n"
        "                      (default: $PPM_DRIFT_SAMPLE, else off)\n"
        "  --drift-threshold X fire the model_drift event when mean\n"
        "                      relative error exceeds X times the\n"
        "                      snapshot's training CV error"
        " (default 2.0)\n"
        "  --drift-min-samples N  residuals required before the event\n"
        "                      can fire (default 32)\n"
        "  --verbose           log requests to stderr\n",
        argv0);
}

std::string
defaultSocket()
{
    const auto env = ppm::serve::socketsFromEnv();
    return env.empty() ? std::string("/tmp/ppm_serve.sock")
                       : env.front();
}

} // namespace

int
main(int argc, char **argv)
{
    ppm::serve::ServerOptions options;
    options.socket_path = defaultSocket();
    if (const char *dir = std::getenv("PPM_MODEL_DIR"))
        options.model_dir = dir;
    if (const char *sample = std::getenv("PPM_DRIFT_SAMPLE"))
        options.drift.sample_every = static_cast<std::uint32_t>(
            std::strtoul(sample, nullptr, 10));

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if ((arg == "--socket" || arg == "--listen") && has_value) {
            options.socket_path = argv[++i];
        } else if (arg == "--fault-spec" && has_value) {
            try {
                ppm::serve::FaultInjector::install(
                    std::make_shared<ppm::serve::FaultInjector>(
                        ppm::serve::FaultSpec::parse(argv[++i])));
            } catch (const std::exception &e) {
                std::fprintf(stderr, "ppm_serve: %s\n", e.what());
                return 2;
            }
        } else if (arg == "--workers" && has_value) {
            options.num_workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--archive-dir" && has_value) {
            options.archive_dir = argv[++i];
        } else if (arg == "--predict" && has_value) {
            options.predict_snapshot = argv[++i];
        } else if (arg == "--model-dir" && has_value) {
            options.model_dir = argv[++i];
        } else if (arg == "--model-poll-ms" && has_value) {
            options.model_poll_ms = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--cache-mb" && has_value) {
            options.cache_mb = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--drift-sample" && has_value) {
            options.drift.sample_every = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--drift-threshold" && has_value) {
            options.drift.threshold_ratio = std::atof(argv[++i]);
        } else if (arg == "--drift-min-samples" && has_value) {
            options.drift.min_samples = std::strtoull(
                argv[++i], nullptr, 10);
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // Block the shutdown signals before spawning workers so every
    // thread inherits the mask and sigwait() below gets them.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    ppm::serve::SimServer server(options);
    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ppm_serve: failed to start: %s\n",
                     e.what());
        return 1;
    }
    // Print the *bound* endpoint: for --listen host:0 this carries
    // the kernel-assigned port clients must connect to.
    std::fprintf(stderr,
                 "ppm_serve: listening on %s (%u worker%s%s%s)\n",
                 server.endpointSpec().c_str(), options.num_workers,
                 options.num_workers == 1 ? "" : "s",
                 options.archive_dir.empty() ? "" : ", archive ",
                 options.archive_dir.c_str());
    if (server.modelVersion() != 0)
        std::fprintf(stderr, "ppm_serve: serving model v%llu\n",
                     static_cast<unsigned long long>(
                         server.modelVersion()));

    int caught = 0;
    sigwait(&signals, &caught);
    std::fprintf(stderr, "ppm_serve: caught %s after %llu requests, "
                         "%llu simulations; shutting down\n",
                 caught == SIGINT ? "SIGINT" : "SIGTERM",
                 static_cast<unsigned long long>(
                     server.requestsServed()),
                 static_cast<unsigned long long>(
                     server.totalEvaluations()));
    server.stop();
    return 0;
}
