/**
 * @file
 * ppm_trainer: the continuous-training daemon — tails shard result
 * archives, folds fresh points into the model incrementally, and
 * republishes hot-swappable snapshots.
 *
 *   ppm_trainer --model-dir DIR (--archive-dir DIR | --archive FILE)...
 *               [--state FILE] [--out FILE.ppmm]
 *               [--benchmark NAME] [--trace-length N] [--warmup N]
 *               [--poll-ms N] [--once] [--model-version V]
 *               [--min-train N] [--refit-growth F]
 *               [--push ENDPOINT]
 *               [--arm-on-drift --stats ENDPOINT] [--verbose]
 *
 * Each --archive-dir contributes one shard archive (the canonical
 * file for the oracle context inside that directory — the file
 * `ppm_serve --archive-dir` writes); --archive names an archive file
 * directly. All archives are tailed from byte offsets persisted in
 * the state file (default `ppm_trainer.state` in --model-dir), so a
 * crashed or restarted trainer resumes exactly where it stopped: no
 * result is ever folded twice or skipped.
 *
 * Snapshots are published atomically to --out (default: the
 * canonical `<benchmark>_t<N>_w<N>_<METRIC>.ppmm` in --model-dir,
 * where a watching `ppm_serve --predict --model-dir` hot-swaps to
 * them) and optionally pushed to a running server with --push.
 *
 * --arm-on-drift holds publishing back until the serve plane's
 * DriftMonitor reports a drift event: the trainer keeps tailing and
 * folding, polls `model.drift.events` on the --stats endpoint, and
 * starts publishing once the counter rises above its value at
 * trainer startup — the drift alert becomes the retrain trigger.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "dspace/paper_space.hh"
#include "serve/model_snapshot.hh"
#include "serve/protocol.hh"
#include "serve/result_archive.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"
#include "train/online_trainer.hh"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --model-dir DIR | --out FILE.ppmm\n"
        "          (--archive-dir DIR | --archive FILE)...\n"
        "  --model-dir DIR    publish snapshots (and keep state) in\n"
        "                     this directory (the one a ppm_serve\n"
        "                     --predict --model-dir watches)\n"
        "  --out FILE.ppmm    explicit snapshot path (overrides the\n"
        "                     canonical name in --model-dir)\n"
        "  --state FILE       resume-offset checkpoint (default\n"
        "                     ppm_trainer.state in --model-dir)\n"
        "  --archive-dir DIR  tail the shard archive for this oracle\n"
        "                     context inside DIR (repeatable)\n"
        "  --archive FILE     tail this archive file (repeatable)\n"
        "  --benchmark NAME   benchmark profile (default twolf)\n"
        "  --trace-length N   trace instructions (default 100000)\n"
        "  --warmup N         warmup instructions (default 0)\n"
        "  --poll-ms N        tail poll interval (default 500)\n"
        "  --once             run one tail/fold/publish epoch and\n"
        "                     exit (0 = idle epoch, 3 = folded work)\n"
        "  --model-version V  fixed published version (default:\n"
        "                     monotone, derived from state)\n"
        "  --min-train N      points before the first full fit\n"
        "                     (default 8)\n"
        "  --refit-growth F   full refit when points grow by this\n"
        "                     factor (default 2.0)\n"
        "  --push ENDPOINT    push each published snapshot to a\n"
        "                     running ppm_serve\n"
        "  --arm-on-drift     publish only after a drift event\n"
        "  --stats ENDPOINT   STATS endpoint polled for\n"
        "                     model.drift.events (with\n"
        "                     --arm-on-drift)\n"
        "  --verbose          log epochs to stderr\n",
        argv0);
}

/** Sum of the server's model.drift.events counters; -1 on failure. */
long long
pollDriftEvents(const std::string &endpoint)
{
    using namespace ppm;
    try {
        serve::FdGuard fd = serve::connectEndpoint(
            serve::parseEndpoint(endpoint), 2000);
        serve::writeFrame(fd.get(), serve::encodeStatsRequest(1),
                          5000);
        const serve::Frame reply = serve::readFrame(fd.get(), 5000);
        if (reply.type != serve::MsgType::StatsResponse)
            return -1;
        const obs::Snapshot snap =
            serve::parseStatsResponse(reply.payload);
        long long events = 0;
        for (const auto &counter : snap.counters) {
            if (counter.name == "model.drift.events")
                events += static_cast<long long>(counter.value);
        }
        return events;
    } catch (const std::exception &) {
        return -1; // server busy or briefly away; retry next epoch
    }
}

/** Push the snapshot to a running server; true when acknowledged. */
bool
pushSnapshot(const ppm::serve::ModelSnapshot &snap,
             const std::string &endpoint)
{
    using namespace ppm;
    const auto image = serve::encodeSnapshot(snap);
    serve::FdGuard fd =
        serve::connectEndpoint(serve::parseEndpoint(endpoint), 5000);
    serve::writeFrame(fd.get(), serve::encodeModelPush(image), 30000);
    const serve::Frame reply = serve::readFrame(fd.get(), 30000);
    if (reply.type != serve::MsgType::ModelPushAck)
        throw std::runtime_error("unexpected push reply type");
    const serve::ModelPushAck ack =
        serve::parseModelPushAck(reply.payload);
    if (!ack.accepted)
        std::fprintf(stderr, "ppm_trainer: push rejected at v%llu%s%s\n",
                     static_cast<unsigned long long>(
                         ack.model_version),
                     ack.message.empty() ? "" : ": ",
                     ack.message.c_str());
    return ack.accepted;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ppm;

    std::string model_dir;
    std::string out;
    std::string state;
    std::vector<std::string> archive_dirs;
    std::vector<std::string> archives;
    std::string benchmark = "twolf";
    std::uint64_t trace_length = 100000;
    std::uint64_t warmup = 0;
    std::uint64_t poll_ms = 500;
    bool once = false;
    std::uint64_t model_version = 0;
    std::size_t min_train = 8;
    double refit_growth = 2.0;
    std::string push_endpoint;
    bool arm_on_drift = false;
    std::string stats_endpoint;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--model-dir" && has_value) {
            model_dir = argv[++i];
        } else if (arg == "--out" && has_value) {
            out = argv[++i];
        } else if (arg == "--state" && has_value) {
            state = argv[++i];
        } else if (arg == "--archive-dir" && has_value) {
            archive_dirs.push_back(argv[++i]);
        } else if (arg == "--archive" && has_value) {
            archives.push_back(argv[++i]);
        } else if (arg == "--benchmark" && has_value) {
            benchmark = argv[++i];
        } else if (arg == "--trace-length" && has_value) {
            trace_length = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--warmup" && has_value) {
            warmup = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--poll-ms" && has_value) {
            poll_ms = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--model-version" && has_value) {
            model_version = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--min-train" && has_value) {
            min_train = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--refit-growth" && has_value) {
            refit_growth = std::strtod(argv[++i], nullptr);
        } else if (arg == "--push" && has_value) {
            push_endpoint = argv[++i];
        } else if (arg == "--arm-on-drift") {
            arm_on_drift = true;
        } else if (arg == "--stats" && has_value) {
            stats_endpoint = argv[++i];
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if ((model_dir.empty() && out.empty()) ||
        (archive_dirs.empty() && archives.empty()) ||
        (arm_on_drift && stats_endpoint.empty())) {
        usage(argv[0]);
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    try {
        const core::Metric metric = core::Metric::Cpi;
        const std::string archive_name = serve::ResultArchive::
            fileNameFor(benchmark, trace_length, warmup, metric);
        if (out.empty())
            out = model_dir + "/" + benchmark + "_t" +
                  std::to_string(trace_length) + "_w" +
                  std::to_string(warmup) + "_" +
                  core::metricName(metric) + ".ppmm";
        if (state.empty() && !model_dir.empty())
            state = model_dir + "/ppm_trainer.state";

        train::OnlineTrainerOptions options;
        options.benchmark = benchmark;
        options.trace_length = trace_length;
        options.warmup = warmup;
        options.metric = metric;
        options.state_path = state;
        options.out_path = out;
        options.model_version = model_version;
        options.min_train_points = min_train;
        options.refit_growth = refit_growth;

        train::OnlineTrainer trainer(dspace::paperTrainSpace(),
                                     std::move(options));
        for (const auto &dir : archive_dirs)
            trainer.addArchive(dir + "/" + archive_name);
        for (const auto &path : archives)
            trainer.addArchive(path);

        long long drift_baseline = -1;
        if (arm_on_drift) {
            trainer.setArmed(false);
            drift_baseline = pollDriftEvents(stats_endpoint);
            if (verbose)
                std::fprintf(stderr,
                             "ppm_trainer: disarmed (drift events "
                             "baseline %lld)\n",
                             drift_baseline);
        }

        std::uint64_t total_folded = 0;
        std::uint64_t pushed_version = 0;
        while (g_stop == 0) {
            if (arm_on_drift && !trainer.armed()) {
                const long long events =
                    pollDriftEvents(stats_endpoint);
                if (events >= 0 && drift_baseline < 0)
                    drift_baseline = events; // first reachable poll
                if (events > drift_baseline && drift_baseline >= 0) {
                    trainer.setArmed(true);
                    std::fprintf(stderr,
                                 "ppm_trainer: drift event observed "
                                 "(%lld > %lld), armed\n",
                                 events, drift_baseline);
                }
            }

            const std::size_t folded = trainer.step();
            total_folded += folded;
            if (verbose && folded > 0)
                std::fprintf(
                    stderr,
                    "ppm_trainer: epoch folded %zu (total %llu "
                    "points, %llu refits, model v%llu)\n",
                    folded,
                    static_cast<unsigned long long>(trainer.folds()),
                    static_cast<unsigned long long>(
                        trainer.refits()),
                    static_cast<unsigned long long>(
                        trainer.modelVersion()));

            if (!push_endpoint.empty() &&
                trainer.publishes() > 0 &&
                trainer.modelVersion() != pushed_version) {
                if (pushSnapshot(trainer.lastPublished(),
                                 push_endpoint))
                    pushed_version = trainer.modelVersion();
            }

            if (once)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(poll_ms));
        }

        std::fprintf(
            stderr,
            "ppm_trainer: exiting with %llu points (%llu folded this "
            "run), %llu refits, %llu publishes, model v%llu\n",
            static_cast<unsigned long long>(trainer.folds()),
            static_cast<unsigned long long>(total_folded),
            static_cast<unsigned long long>(trainer.refits()),
            static_cast<unsigned long long>(trainer.publishes()),
            static_cast<unsigned long long>(trainer.modelVersion()));
        if (once)
            return total_folded > 0 ? 3 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ppm_trainer: %s\n", e.what());
        return 1;
    }
    return 0;
}
