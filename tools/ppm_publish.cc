/**
 * @file
 * ppm_publish: train a CPI model and publish it as a versioned,
 * CRC-checked snapshot that ppm_serve --predict can host — the
 * sim → train → serve loop in one command.
 *
 *   ppm_publish --out FILE.ppmm [--benchmark NAME]
 *               [--trace-length N] [--warmup N] [--samples N]
 *               [--seed N] [--archive FILE] [--model-version V]
 *               [--push ENDPOINT] [--verbose]
 *
 * Two training-data modes:
 *
 *   default           generate the benchmark trace, draw the paper's
 *                     discrepancy-optimized latin hypercube sample,
 *                     and simulate it through serve::makeOracle() —
 *                     so PPM_SERVE_SOCKET shards the simulations and
 *                     PPM_ARCHIVE_DIR persists them, unchanged.
 *   --archive FILE    no simulation at all: train from the design
 *                     points already recorded in a ResultArchive
 *                     (e.g. one written by ppm_serve --archive-dir).
 *
 * The published snapshot carries the trained RBF network, the linear
 * baseline, and the design-space metadata servers validate queries
 * against. Publishing is atomic (temp file + rename): a watching
 * ppm_serve hot-swaps to it with zero downtime. When --out already
 * holds a loadable snapshot the new model_version defaults to its
 * version + 1, so repeated publishes always roll servers forward.
 *
 * --push additionally sends the image to a running server as a MODEL
 * push frame and reports the acknowledged version.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "dspace/paper_space.hh"
#include "linreg/model_selection.hh"
#include "math/rng.hh"
#include "rbf/trainer.hh"
#include "sampling/sample_gen.hh"
#include "serve/model_snapshot.hh"
#include "serve/oracle_factory.hh"
#include "serve/result_archive.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --out FILE.ppmm [--benchmark NAME]"
        " [--trace-length N] [--warmup N] [--samples N] [--seed N]"
        " [--archive FILE] [--model-version V] [--push ENDPOINT]"
        " [--verbose]\n"
        "  --out FILE.ppmm    snapshot to publish (atomic replace);\n"
        "                     required\n"
        "  --benchmark NAME   benchmark profile (default twolf)\n"
        "  --trace-length N   trace instructions (default 100000)\n"
        "  --warmup N         warmup instructions (default 0)\n"
        "  --samples N        training sample size (default 30)\n"
        "  --seed N           sampling seed (default 1)\n"
        "  --archive FILE     train from this ResultArchive instead\n"
        "                     of simulating (context must match the\n"
        "                     benchmark/trace-length/warmup above)\n"
        "  --model-version V  published version (default: version of\n"
        "                     the existing --out file + 1, else 1)\n"
        "  --push ENDPOINT    also push the image to a running\n"
        "                     ppm_serve (Unix path or host:port)\n"
        "  --verbose          log training detail to stderr\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ppm;

    std::string out;
    std::string benchmark = "twolf";
    std::uint64_t trace_length = 100000;
    std::uint64_t warmup = 0;
    int samples = 30;
    std::uint64_t seed = 1;
    std::string archive_path;
    std::uint64_t model_version = 0; // 0 = derive from --out
    std::string push_endpoint;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--out" && has_value) {
            out = argv[++i];
        } else if (arg == "--benchmark" && has_value) {
            benchmark = argv[++i];
        } else if (arg == "--trace-length" && has_value) {
            trace_length = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--warmup" && has_value) {
            warmup = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--samples" && has_value) {
            samples = static_cast<int>(
                std::strtol(argv[++i], nullptr, 10));
        } else if (arg == "--seed" && has_value) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--archive" && has_value) {
            archive_path = argv[++i];
        } else if (arg == "--model-version" && has_value) {
            model_version = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--push" && has_value) {
            push_endpoint = argv[++i];
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (out.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        const auto space = dspace::paperTrainSpace();
        const core::Metric metric = core::Metric::Cpi;

        // Training data: archived results, or fresh simulations.
        std::vector<dspace::DesignPoint> points;
        std::vector<double> ys;
        if (!archive_path.empty()) {
            // Archive keys are the memo-cache keys: each coordinate
            // stored as llround(value * 1e6); invert to raw points.
            const std::string context =
                benchmark + "|t" + std::to_string(trace_length) +
                "|w" + std::to_string(warmup) + "|" +
                core::metricName(metric);
            serve::ResultArchive archive(archive_path, context);
            archive.load([&](const core::ResultStore::Key &key,
                             double value) {
                dspace::DesignPoint point(key.size());
                for (std::size_t d = 0; d < key.size(); ++d)
                    point[d] =
                        static_cast<double>(key[d]) / 1e6;
                if (point.size() != space.size() ||
                    !space.contains(point))
                    return; // foreign or out-of-space record
                points.push_back(std::move(point));
                ys.push_back(value);
            });
            if (points.empty())
                throw std::runtime_error(
                    "archive holds no usable records for context " +
                    context);
        } else {
            const auto trace = trace::generateTrace(
                trace::profileByName(benchmark),
                static_cast<std::size_t>(trace_length));
            sim::SimOptions sim_options;
            sim_options.warmup_instructions = warmup;
            const auto oracle = serve::makeOracle(
                space, benchmark, trace, sim_options, metric);
            math::Rng rng(seed);
            points = sampling::bestLatinHypercube(space, samples, 32,
                                                  rng)
                         .points;
            ys = oracle->evaluateAll(points);
        }

        std::vector<dspace::UnitPoint> xs;
        xs.reserve(points.size());
        for (const auto &p : points)
            xs.push_back(space.toUnit(p));

        if (verbose)
            std::fprintf(stderr,
                         "ppm_publish: training on %zu points\n",
                         xs.size());
        const rbf::TrainedRbf trained = rbf::trainRbfModel(xs, ys);
        const linreg::SelectedLinearModel linear =
            linreg::fitSelectedLinearModel(xs, ys);

        // Training-time cross-validated relative error: the drift
        // monitor's baseline (snapshot format 2). Deterministic
        // k-fold with a round-robin split (no RNG) refitting at the
        // winning (p_min, alpha) only, so repeated publishes of the
        // same data store the same baseline bit-for-bit.
        double cv_error = 0.0;
        const std::size_t folds =
            std::min<std::size_t>(5, xs.size() / 2);
        if (folds >= 2) {
            rbf::TrainerOptions fold_options;
            fold_options.p_min_grid = {trained.p_min};
            fold_options.alpha_grid = {trained.alpha};
            double err_sum = 0.0;
            std::size_t err_n = 0;
            for (std::size_t f = 0; f < folds; ++f) {
                std::vector<dspace::UnitPoint> train_xs, test_xs;
                std::vector<double> train_ys, test_ys;
                for (std::size_t i = 0; i < xs.size(); ++i) {
                    if (i % folds == f) {
                        test_xs.push_back(xs[i]);
                        test_ys.push_back(ys[i]);
                    } else {
                        train_xs.push_back(xs[i]);
                        train_ys.push_back(ys[i]);
                    }
                }
                try {
                    const rbf::TrainedRbf fold = rbf::trainRbfModel(
                        train_xs, train_ys, fold_options);
                    for (std::size_t i = 0; i < test_xs.size(); ++i) {
                        const double pred =
                            fold.network.predict(test_xs[i]);
                        err_sum += std::abs(pred - test_ys[i]) /
                                   std::max(std::abs(test_ys[i]),
                                            1e-12);
                        ++err_n;
                    }
                } catch (const std::exception &) {
                    // A fold too small to fit leaves the estimate to
                    // the remaining folds.
                }
            }
            if (err_n > 0)
                cv_error = err_sum / static_cast<double>(err_n);
            if (verbose)
                std::fprintf(stderr,
                             "ppm_publish: %zu-fold CV relative error"
                             " %.4f (%zu held-out points)\n",
                             folds, cv_error, err_n);
        }

        serve::ModelSnapshot snap;
        if (model_version == 0) {
            model_version = 1;
            try {
                model_version =
                    serve::loadSnapshot(out).model_version + 1;
            } catch (const serve::SnapshotError &) {
                // absent or unreadable: start at version 1
            }
        }
        snap.model_version = model_version;
        snap.benchmark = benchmark;
        snap.metric = metric;
        snap.trace_length = trace_length;
        snap.warmup = warmup;
        snap.train_points = static_cast<std::uint32_t>(xs.size());
        snap.p_min = static_cast<std::uint32_t>(trained.p_min);
        snap.alpha = trained.alpha;
        snap.cv_error = cv_error;
        snap.space = space;
        snap.network = trained.network;
        snap.linear = linear.model;
        serve::saveSnapshot(snap, out);
        std::fprintf(stderr,
                     "ppm_publish: published %s v%llu (%s, %u train "
                     "points, %zu centers, %zu linear terms)\n",
                     out.c_str(),
                     static_cast<unsigned long long>(
                         snap.model_version),
                     benchmark.c_str(), snap.train_points,
                     snap.network.bases().size(),
                     snap.linear.terms().size());

        if (!push_endpoint.empty()) {
            const auto image = serve::encodeSnapshot(snap);
            serve::FdGuard fd = serve::connectEndpoint(
                serve::parseEndpoint(push_endpoint), 5000);
            serve::writeFrame(fd.get(),
                              serve::encodeModelPush(image), 30000);
            const serve::Frame reply =
                serve::readFrame(fd.get(), 30000);
            if (reply.type != serve::MsgType::ModelPushAck)
                throw std::runtime_error(
                    "unexpected push reply type");
            const serve::ModelPushAck ack =
                serve::parseModelPushAck(reply.payload);
            std::fprintf(stderr,
                         "ppm_publish: push %s (server at v%llu)%s%s\n",
                         ack.accepted ? "accepted" : "rejected",
                         static_cast<unsigned long long>(
                             ack.model_version),
                         ack.message.empty() ? "" : ": ",
                         ack.message.c_str());
            if (!ack.accepted)
                return 1;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "ppm_publish: %s\n", e.what());
        return 1;
    }
    return 0;
}
